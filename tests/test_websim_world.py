"""Tests for the assembled World and its fetch semantics."""

import pytest

from repro.httpsim.messages import Headers, Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers, crawler_headers
from repro.netsim.errors import ConnectionTimeout, FetchError
from repro.websim import blockpages
from repro.websim.world import World, WorldConfig


def _request(domain, headers=None):
    return Request(url=parse_url(f"http://{domain}/"),
                   headers=headers or browser_headers())


def _find(world, predicate):
    for domain in world.population:
        if predicate(domain):
            return domain
    return None


class TestConstruction:
    def test_population_size(self, nano_world):
        assert len(nano_world.population) == 350

    def test_countries_restricted(self, nano_world):
        assert len(nano_world.registry) == 12

    def test_policies_assigned(self, nano_world):
        assert nano_world.policies
        assert nano_world.geoblocking_domains()

    def test_deterministic_construction(self):
        a = World(WorldConfig.nano())
        b = World(WorldConfig.nano())
        assert [d.name for d in a.population] == [d.name for d in b.population]
        assert a.policies.keys() == b.policies.keys()

    def test_dns_has_all_domains(self, nano_world):
        for domain in list(nano_world.population)[:20]:
            assert nano_world.dns.try_query(domain.name, "A")

    def test_appengine_netblocks_published(self, nano_world):
        from repro.netsim.dns import expand_spf_netblocks
        blocks = expand_spf_netblocks(
            nano_world.dns, "_cloud-netblocks.googleusercontent.com")
        assert len(blocks) == 65


class TestAddresses:
    def test_residential_address_geolocates(self, nano_world):
        for code in ("US", "IR", "CN"):
            address = nano_world.residential_address(code)
            assert nano_world.geoip.true_country(address) == code

    def test_vps_address_stable(self, nano_world):
        assert nano_world.vps_address("US") == nano_world.vps_address("US")

    def test_vps_unknown_country(self, nano_world):
        with pytest.raises(KeyError):
            nano_world.vps_address("DE")  # DE has no VPS in the paper's fleet


class TestFetchBasics:
    def test_normal_page(self, nano_world):
        domain = _find(nano_world, lambda d: not d.dead and not d.redirect_loop
                       and not d.https_redirect and not d.www_redirect
                       and d.name not in nano_world.policies
                       and not d.censored_in and not d.bot_protection)
        response = nano_world.fetch(_request(domain.name),
                                    nano_world.residential_address("US"))
        assert response.status == 200
        assert len(response.body) > 3000

    def test_unknown_host(self, nano_world):
        with pytest.raises(FetchError):
            nano_world.fetch(_request("no-such-host.example"),
                             nano_world.residential_address("US"))

    def test_dead_domain_times_out(self, nano_world):
        domain = _find(nano_world, lambda d: d.dead)
        with pytest.raises(ConnectionTimeout):
            nano_world.fetch(_request(domain.name),
                             nano_world.residential_address("US"))

    def test_redirect_loop_domain(self, nano_world):
        domain = _find(nano_world, lambda d: d.redirect_loop and not d.dead)
        response = nano_world.fetch(_request(domain.name),
                                    nano_world.residential_address("US"))
        assert response.is_redirect

    def test_https_redirect(self, nano_world):
        domain = _find(nano_world, lambda d: d.https_redirect and not d.dead
                       and not d.redirect_loop
                       and d.name not in nano_world.policies
                       and not d.censored_in)
        response = nano_world.fetch(_request(domain.name),
                                    nano_world.residential_address("US"))
        assert response.status == 301
        assert response.location.startswith("https://")

    def test_www_host_resolves(self, nano_world):
        domain = _find(nano_world, lambda d: not d.dead and not d.redirect_loop
                       and d.name not in nano_world.policies
                       and not d.censored_in and not d.bot_protection)
        request = Request(url=parse_url(f"https://www.{domain.name}/"),
                          headers=browser_headers())
        response = nano_world.fetch(request, nano_world.residential_address("US"))
        assert response.status in (200, 301)


class TestGeoblocking:
    def _blocked_pair(self, world):
        for name, policy in world.policies.items():
            if not policy.is_geoblocking:
                continue
            domain = world.population.get(name)
            if domain.dead or domain.redirect_loop:
                continue
            for country in sorted(policy.blocked_countries):
                info = world.registry.get(country) if country in world.registry else None
                if info is not None and info.luminati and country not in domain.censored_in:
                    return name, country, policy
        pytest.skip("no reachable geoblocked pair in this world")

    def test_blocked_country_gets_block_page(self, nano_world):
        name, country, policy = self._blocked_pair(nano_world)
        # Use several client addresses to dodge geolocation error.
        import random
        rng = random.Random(0)
        statuses = []
        for _ in range(5):
            ip = nano_world.residential_address(country, rng)
            response = nano_world.fetch(_request(name), ip)
            statuses.append(response.status)
        assert 403 in statuses

    def test_unblocked_country_loads(self, nano_world):
        name, country, policy = self._blocked_pair(nano_world)
        open_country = next(c for c in nano_world.registry.luminati_codes()
                            if c not in policy.blocked_countries)
        import random
        rng = random.Random(1)
        ip = nano_world.residential_address(open_country, rng)
        response = nano_world.fetch(_request(name), ip)
        assert response.status in (200, 301)

    def test_ground_truth_accessor(self, nano_world):
        name, country, policy = self._blocked_pair(nano_world)
        assert nano_world.is_geoblocked(name, country)
        assert not nano_world.is_geoblocked(name, "ZZ")


class TestBotDetection:
    def test_zgrab_trips_protected_domain(self, tiny_world):
        domain = _find(tiny_world, lambda d: d.bot_protection and not d.dead
                       and not d.redirect_loop and d.name not in tiny_world.policies
                       and not d.censored_in)
        ip = tiny_world.vps_address("US")
        flagged = 0
        for _ in range(10):
            response = tiny_world.fetch(_request(domain.name, crawler_headers()), ip)
            if response.status == 403:
                flagged += 1
        assert flagged >= 5  # 0.85 per request

    def test_browser_rarely_flagged(self, tiny_world):
        domain = _find(tiny_world, lambda d: d.bot_protection and not d.dead
                       and not d.redirect_loop and d.name not in tiny_world.policies
                       and not d.censored_in)
        ip = tiny_world.vps_address("US")
        flagged = 0
        for _ in range(10):
            response = tiny_world.fetch(_request(domain.name, browser_headers()), ip)
            if response.status == 403:
                flagged += 1
        assert flagged <= 3


class TestCensorship:
    def test_iran_censor_page(self, tiny_world):
        domain = _find(tiny_world, lambda d: "IR" in d.censored_in and not d.dead)
        if domain is None:
            pytest.skip("no IR-censored domain in this world")
        ip = tiny_world.residential_address("IR")
        response = tiny_world.fetch(_request(domain.name), ip)
        assert response.status == 403
        assert "10.10.34.34" in response.body

    def test_china_censorship_errors(self, tiny_world):
        domain = _find(tiny_world, lambda d: "CN" in d.censored_in and not d.dead)
        if domain is None:
            pytest.skip("no CN-censored domain in this world")
        ip = tiny_world.residential_address("CN")
        with pytest.raises(FetchError):
            tiny_world.fetch(_request(domain.name), ip)


class TestEdgeHeaders:
    def test_cloudflare_header_present(self, nano_world):
        domain = _find(nano_world, lambda d: d.provider == "cloudflare"
                       and not d.dead and not d.redirect_loop
                       and not d.censored_in)
        response = nano_world.fetch(_request(domain.name),
                                    nano_world.residential_address("US"))
        assert "CF-RAY" in response.headers

    def test_akamai_pragma_debug_headers(self, nano_world):
        domain = _find(nano_world, lambda d: d.provider == "akamai"
                       and not d.dead and not d.redirect_loop
                       and not d.censored_in and not d.bot_protection)
        headers = browser_headers()
        headers.set("Pragma", "akamai-x-cache-on, akamai-x-get-cache-key")
        response = nano_world.fetch(_request(domain.name, headers),
                                    nano_world.residential_address("US"))
        assert "X-Cache-Key" in response.headers

    def test_akamai_without_pragma_no_debug(self, nano_world):
        domain = _find(nano_world, lambda d: d.provider == "akamai"
                       and not d.dead and not d.redirect_loop
                       and not d.censored_in and not d.bot_protection)
        response = nano_world.fetch(_request(domain.name),
                                    nano_world.residential_address("US"))
        assert "X-Cache-Key" not in response.headers


class TestTransientPolicy:
    def test_transient_policy_expires(self, tiny_world):
        name = next((n for n, p in tiny_world.policies.items()
                     if p.expires_epoch == 0), None)
        assert name is not None
        policy = tiny_world.policies[name]
        country = sorted(policy.blocked_countries)[0]
        assert tiny_world.is_geoblocked(name, country, epoch=0)
        assert not tiny_world.is_geoblocked(name, country, epoch=1)


class TestPageCache:
    """Regression for the old all-or-nothing cache flush.

    ``World._page_cache`` used to be a plain dict that was *cleared
    entirely* once it crossed 20k entries, so a long scan regenerated
    every page from scratch right after the flush.  It is now a bounded
    LRU sized to hold the whole population, so steady-state scans compute
    each page exactly once.
    """

    def test_each_page_generated_exactly_once(self, monkeypatch):
        world = World(WorldConfig.nano(seed=3))
        calls = []
        import repro.websim.world as world_module
        real = world_module.generate_page
        monkeypatch.setattr(world_module, "generate_page",
                            lambda name, category, seed=0:
                            calls.append(name) or real(name, category,
                                                       seed=seed))
        domains = list(world.population)
        for _ in range(2):
            for domain in domains:
                world._page(domain)
        assert len(calls) == len(domains)
        assert len(set(calls)) == len(calls)

    def test_cache_capacity_covers_population(self):
        world = World(WorldConfig.nano(seed=3))
        assert world._page_cache.capacity >= max(len(world.population), 20_000)

    def test_page_length_agrees_with_page(self):
        world = World(WorldConfig.nano(seed=3))
        for domain in list(world.population)[:40]:
            # length-first (cold page cache), then materialize and check
            assert world._page_length(domain) == len(world._page(domain))
