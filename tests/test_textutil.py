"""Tests for HTML text extraction, n-grams, TF-IDF, and clustering."""

import numpy as np
import pytest

from repro.textutil.htmltext import extract_text, normalize_whitespace
from repro.textutil.linkage import (
    agglomerative_clusters,
    cluster_documents,
    single_link_clusters,
)
from repro.textutil.ngrams import ngram_counts, tokenize, word_ngrams
from repro.textutil.tfidf import TfidfVectorizer


class TestHtmlText:
    def test_strips_tags(self):
        assert extract_text("<p>Hello <b>world</b></p>") == "Hello world"

    def test_removes_scripts_and_styles(self):
        html = "<script>var x = 'secret';</script><style>.a{}</style><p>keep</p>"
        assert extract_text(html) == "keep"

    def test_removes_comments(self):
        assert extract_text("<p>a</p><!-- hidden -->") == "a"

    def test_decodes_entities(self):
        assert extract_text("<p>a &amp; b</p>") == "a & b"

    def test_normalize_whitespace(self):
        assert normalize_whitespace("  a\n\t b   c ") == "a b c"

    def test_multiline_script(self):
        html = "<script>\nline1\nline2\n</script>ok"
        assert extract_text(html) == "ok"


class TestNgrams:
    def test_tokenize_lowercases(self):
        assert tokenize("Hello WORLD 403") == ["hello", "world", "403"]

    def test_tokenize_splits_punctuation(self):
        assert tokenize("don't-stop.now") == ["don", "t", "stop", "now"]

    def test_unigrams_and_bigrams(self):
        grams = word_ngrams(["a", "b", "c"], (1, 2))
        assert grams == ["a", "b", "c", "a b", "b c"]

    def test_trigram_range(self):
        grams = word_ngrams(["a", "b", "c", "d"], (3, 3))
        assert grams == ["a b c", "b c d"]

    def test_bad_range(self):
        with pytest.raises(ValueError):
            word_ngrams(["a"], (2, 1))

    def test_ngram_counts(self):
        counts = ngram_counts("a b a")
        assert counts["a"] == 2
        assert counts["a b"] == 1
        assert counts["b a"] == 1


class TestTfidf:
    def test_rows_l2_normalized(self):
        docs = ["<p>access denied page</p>", "<p>welcome to the site</p>",
                "<p>access granted here</p>"]
        matrix = TfidfVectorizer().fit_transform(docs)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        assert np.allclose(norms, 1.0)

    def test_shape(self):
        docs = ["<p>a b</p>", "<p>c d</p>"]
        vectorizer = TfidfVectorizer()
        matrix = vectorizer.fit_transform(docs)
        assert matrix.shape == (2, len(vectorizer.vocabulary_))

    def test_identical_docs_identical_rows(self):
        docs = ["<p>same text</p>", "<p>same text</p>", "<p>other words</p>"]
        matrix = TfidfVectorizer().fit_transform(docs)
        sim = (matrix[0] @ matrix[1].T).toarray()[0, 0]
        assert sim == pytest.approx(1.0)

    def test_disjoint_docs_orthogonal(self):
        docs = ["<p>alpha beta</p>", "<p>gamma delta</p>"]
        matrix = TfidfVectorizer().fit_transform(docs)
        sim = (matrix[0] @ matrix[1].T).toarray()[0, 0]
        assert sim == pytest.approx(0.0)

    def test_min_df_filters(self):
        docs = ["<p>common rare1</p>", "<p>common rare2</p>"]
        vectorizer = TfidfVectorizer(min_df=2)
        vectorizer.fit_transform(docs)
        assert "common" in vectorizer.vocabulary_
        assert "rare1" not in vectorizer.vocabulary_

    def test_max_features(self):
        docs = ["<p>a b c d e f g h</p>"]
        vectorizer = TfidfVectorizer(max_features=5)
        vectorizer.fit_transform(docs)
        assert len(vectorizer.vocabulary_) == 5

    def test_transform_requires_fit(self):
        with pytest.raises(RuntimeError):
            TfidfVectorizer().transform(["<p>x</p>"])

    def test_transform_uses_fitted_vocab(self):
        vectorizer = TfidfVectorizer()
        vectorizer.fit_transform(["<p>known words only</p>"])
        matrix = vectorizer.transform(["<p>unknown vocabulary</p>"])
        assert matrix.nnz == 0

    def test_plain_text_mode(self):
        vectorizer = TfidfVectorizer(html_input=False)
        vectorizer.fit_transform(["<p>tag stays</p>"])
        assert "p" in vectorizer.vocabulary_


class TestSingleLinkClusters:
    def test_empty(self):
        from scipy import sparse
        labels = single_link_clusters(sparse.csr_matrix((0, 4)))
        assert labels == []

    def test_chain_merging(self):
        # Single-link is transitive: A~B, B~C => one cluster even if A!~C.
        docs = ["<p>a b c d</p>", "<p>c d e f</p>", "<p>e f g h</p>"]
        result = cluster_documents(docs, distance_threshold=0.75)
        assert len(set(result.labels)) == 1

    def test_distinct_clusters(self):
        docs = ["<p>alpha beta gamma</p>", "<p>alpha beta gamma</p>",
                "<p>totally different words here</p>"]
        result = cluster_documents(docs, distance_threshold=0.3)
        assert result.labels[0] == result.labels[1]
        assert result.labels[0] != result.labels[2]

    def test_duplicates_share_cluster(self):
        docs = ["<p>same page</p>"] * 5 + ["<p>unique other content</p>"]
        result = cluster_documents(docs)
        assert len(result.members(result.labels[0])) == 5

    def test_exemplars(self):
        docs = ["<p>one two</p>", "<p>three four</p>"]
        result = cluster_documents(docs, distance_threshold=0.2)
        for label, members in result.clusters.items():
            assert result.exemplars[label] == members[0]

    def test_largest_first(self):
        docs = ["<p>big cluster text</p>"] * 4 + ["<p>small lonely page</p>"]
        result = cluster_documents(docs, distance_threshold=0.2)
        order = result.largest_first()
        sizes = [len(result.members(l)) for l in order]
        assert sizes == sorted(sizes, reverse=True)


class TestAgglomerative:
    def test_methods_agree_on_clean_data(self):
        docs = (["<p>block page access denied</p>"] * 3
                + ["<p>welcome friendly homepage content</p>"] * 3)
        single = cluster_documents(docs, 0.3, method="single")
        complete = cluster_documents(docs, 0.3, method="complete")
        average = cluster_documents(docs, 0.3, method="average")
        for result in (single, complete, average):
            assert result.n_clusters == 2

    def test_single_element(self):
        result = cluster_documents(["<p>only</p>"], method="complete")
        assert result.labels == [0]

    def test_empty_documents(self):
        result = cluster_documents([])
        assert result.labels == []
        assert result.n_clusters == 0
