"""Tests for the cookie jar and the challenge-solving browser flow."""

import pytest

from repro.httpsim.cookies import CookieJar
from repro.httpsim.messages import Headers
from repro.proxynet.browser import InteractiveBrowser
from repro.websim.world import World, WorldConfig


class TestCookieJar:
    def test_set_and_get(self):
        jar = CookieJar()
        jar.set_cookie("e.com", "a", "1")
        assert jar.get("e.com", "a") == "1"
        assert jar.get("e.com", "b") is None

    def test_www_folded_to_apex(self):
        jar = CookieJar()
        jar.set_cookie("www.e.com", "a", "1")
        assert jar.get("e.com", "a") == "1"
        assert jar.cookie_header("www.e.com") == "a=1"

    def test_update_from_response(self):
        jar = CookieJar()
        headers = Headers([
            ("Set-Cookie", "cf_clearance=tok123; path=/; HttpOnly"),
            ("Set-Cookie", "session=abc"),
            ("Set-Cookie", "malformed-no-equals"),
        ])
        assert jar.update_from_response("e.com", headers) == 2
        assert jar.get("e.com", "cf_clearance") == "tok123"
        assert jar.get("e.com", "session") == "abc"

    def test_cookie_header_joins(self):
        jar = CookieJar()
        jar.set_cookie("e.com", "a", "1")
        jar.set_cookie("e.com", "b", "2")
        assert jar.cookie_header("e.com") == "a=1; b=2"

    def test_apply(self):
        jar = CookieJar()
        jar.set_cookie("e.com", "a", "1")
        headers = Headers()
        jar.apply("e.com", headers)
        assert headers.get("Cookie") == "a=1"

    def test_apply_no_cookies_noop(self):
        headers = Headers()
        CookieJar().apply("e.com", headers)
        assert "Cookie" not in headers

    def test_clear(self):
        jar = CookieJar()
        jar.set_cookie("a.com", "x", "1")
        jar.set_cookie("b.com", "y", "2")
        jar.clear("a.com")
        assert jar.get("a.com", "x") is None
        assert jar.get("b.com", "y") == "2"
        jar.clear()
        assert jar.get("b.com", "y") is None

    def test_hosts_isolated(self):
        jar = CookieJar()
        jar.set_cookie("a.com", "x", "1")
        assert jar.get("b.com", "x") is None


@pytest.fixture(scope="module")
def challenge_world():
    return World(WorldConfig.tiny(seed=5))


def _challenged_pair(world, kind):
    """Find (domain, country) where the policy challenges the country."""
    from repro.websim import blockpages
    wanted = (blockpages.CLOUDFLARE_JS if kind == "js"
              else blockpages.CLOUDFLARE_CAPTCHA)
    for name, policy in world.policies.items():
        if policy.challenge_page != wanted:
            continue
        domain = world.population.get(name)
        if domain.dead or domain.redirect_loop or domain.censored_in:
            continue
        if policy.challenge_all:
            open_countries = [c for c in world.registry.luminati_codes()
                              if not policy.blocks(c, None, 0)]
            if open_countries:
                return name, open_countries[0]
        for country in sorted(policy.challenge_countries):
            if (country in world.registry
                    and world.registry.get(country).luminati
                    and not policy.blocks(country, None, 0)):
                return name, country
    return None, None


class TestJsChallengeFlow:
    def test_browser_passes_js_challenge(self, challenge_world):
        name, country = _challenged_pair(challenge_world, "js")
        if name is None:
            pytest.skip("no JS-challenged pair in this world")
        ip = challenge_world.residential_address(country)
        browser = InteractiveBrowser(challenge_world, ip)
        result = browser.visit(f"http://{name}/")
        assert result.ok
        assert result.response.status == 200
        assert result.challenges_solved == 1
        assert result.solved_kinds == ["js"]
        assert browser.cookies.get(name, "cf_clearance")

    def test_clearance_cookie_reused(self, challenge_world):
        name, country = _challenged_pair(challenge_world, "js")
        if name is None:
            pytest.skip("no JS-challenged pair in this world")
        ip = challenge_world.residential_address(country)
        browser = InteractiveBrowser(challenge_world, ip)
        browser.visit(f"http://{name}/")
        again = browser.visit(f"http://{name}/")
        assert again.ok
        assert again.challenges_solved == 0  # cookie skipped the challenge


class TestCaptchaFlow:
    def test_human_passes_captcha(self, challenge_world):
        name, country = _challenged_pair(challenge_world, "captcha")
        if name is None:
            pytest.skip("no captcha-challenged pair in this world")
        ip = challenge_world.residential_address(country)
        browser = InteractiveBrowser(challenge_world, ip, human=True)
        result = browser.visit(f"http://{name}/")
        assert result.ok
        assert result.response.status == 200
        assert result.solved_kinds == ["captcha"]

    def test_bot_stuck_at_captcha(self, challenge_world):
        name, country = _challenged_pair(challenge_world, "captcha")
        if name is None:
            pytest.skip("no captcha-challenged pair in this world")
        ip = challenge_world.residential_address(country)
        browser = InteractiveBrowser(challenge_world, ip, human=False)
        result = browser.visit(f"http://{name}/")
        assert result.ok
        assert result.response.status == 403  # still the captcha page
        assert result.challenges_solved == 0


class TestSolveEndpoint:
    def test_malformed_solve_rejected(self, challenge_world):
        from repro.httpsim.messages import Request
        from repro.httpsim.url import parse_url
        from repro.httpsim.useragent import browser_headers
        name, country = _challenged_pair(challenge_world, "js")
        if name is None:
            pytest.skip("no challenged pair")
        ip = challenge_world.residential_address(country)
        request = Request(
            url=parse_url(f"http://{name}/cdn-cgi/l/chk_jschl?bogus=1"),
            headers=browser_headers())
        response = challenge_world.fetch(request, ip)
        assert response.status == 403  # captcha page, no clearance
        assert "Set-Cookie" not in response.headers

    def test_challenge_does_not_grant_access_to_blocked(self, challenge_world):
        # Geoblocking outranks challenges: a blocked country cannot solve
        # its way in (the block check runs first).
        from repro.websim import blockpages
        for name, policy in challenge_world.policies.items():
            if not policy.is_geoblocking or policy.action != "page":
                continue
            domain = challenge_world.population.get(name)
            if domain.dead or domain.redirect_loop or domain.censored_in:
                continue
            country = next(
                (c for c in sorted(policy.blocked_countries)
                 if c in challenge_world.registry
                 and challenge_world.registry.get(c).luminati), None)
            if country is None:
                continue
            import random
            ip = challenge_world.residential_address(country, random.Random(0))
            browser = InteractiveBrowser(challenge_world, ip, human=True)
            result = browser.visit(f"http://{name}/")
            if result.ok and result.response.status == 403:
                return  # still blocked despite a willing human
        pytest.skip("no reachable page-blocking pair")
