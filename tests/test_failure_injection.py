"""Failure-injection tests: the pipeline under degraded conditions."""

import pytest

from repro.core.metrics import score_confirmed_blocks
from repro.core.pipeline import run_top10k_study
from repro.lumscan.scanner import Lumscan, LumscanConfig
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig


class TestNoExitCountry:
    def test_scan_records_no_exit_errors(self):
        world = World(WorldConfig.nano())
        scanner = Lumscan(LuminatiClient(world))
        urls = [d.url for d in world.population.top(3)]
        data = scanner.scan(urls, ["KP"], samples=2)
        assert len(data) == 6
        assert all(s.error == "no-exit" for s in data)

    def test_study_excludes_no_exit_countries(self):
        world = World(WorldConfig.nano())
        result = run_top10k_study(world)
        assert "KP" not in result.countries


class TestGeoIPErrorInjection:
    def test_high_geoip_error_precision_survives(self):
        # With a 15% mislocation rate, block pages appear "randomly" in
        # wrong countries during the initial scan, but mislocation is
        # per-exit-address: the 20-sample confirmation from many exits
        # averages it out and the threshold rejects spurious pairs.
        from dataclasses import replace
        noisy = World(replace(WorldConfig.nano(seed=3), geoip_error_rate=0.15))
        result = run_top10k_study(noisy)
        score = score_confirmed_blocks(noisy, result.confirmed,
                                       result.safe_domains, result.countries)
        assert score.precision >= 0.9

    def test_zero_geoip_error_supported(self):
        from dataclasses import replace
        world = World(replace(WorldConfig.nano(seed=4), geoip_error_rate=0.0))
        assert world.geoip.error_rate == 0.0
        result = run_top10k_study(world)
        score = score_confirmed_blocks(world, result.confirmed,
                                       result.safe_domains, result.countries)
        assert score.precision >= 0.95


class TestUnreliableNetwork:
    def test_retries_mask_transient_failures(self):
        world = World(WorldConfig.nano())
        urls = [d.url for d in world.population.top(30) if not d.dead][:20]
        aggressive = Lumscan(LuminatiClient(world),
                             config=LumscanConfig(retries=4), seed=2)
        data = aggressive.scan(urls, ["SD"], samples=3)  # reliability 0.90
        ok = sum(1 for s in data if s.ok)
        assert ok / len(data) > 0.65

    def test_all_dead_probe_list(self):
        world = World(WorldConfig.nano())
        dead = [d.url for d in world.population if d.dead][:5]
        if not dead:
            pytest.skip("no dead domains")
        scanner = Lumscan(LuminatiClient(world))
        data = scanner.scan(dead, ["US"], samples=2)
        assert all(not s.ok for s in data)
        rates = data.error_rate_by_domain()
        assert all(rate == 1.0 for rate in rates.values())


class TestEmptyInputs:
    def test_scan_no_urls(self):
        world = World(WorldConfig.nano())
        scanner = Lumscan(LuminatiClient(world))
        data = scanner.scan([], ["US"], samples=3)
        assert len(data) == 0

    def test_scan_no_countries(self):
        world = World(WorldConfig.nano())
        scanner = Lumscan(LuminatiClient(world))
        data = scanner.scan(["http://x.com/"], [], samples=3)
        assert len(data) == 0

    def test_confirm_with_empty_resample(self):
        from repro.core.resample import confirm_blocks
        from repro.lumscan.records import ScanDataset
        assert confirm_blocks(ScanDataset(), ScanDataset()) == []
