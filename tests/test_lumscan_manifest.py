"""Manifest-backed multi-segment datasets: codec, kernels, and append.

Covers the ``.lshm`` layer end to end: manifest write/read round-trips
and byte-determinism, O(new rows) append (prior segments untouched),
adoption of pre-finalized spill segments, compaction byte-identical to
the sequential segment writer, the :class:`SegmentedScanDataset` logical
view (kernels folded over segments must be bit-identical to the flat
columnar path and the scalar references), serialize-layer round-trips
with segment reuse, and the scan engine's manifest append mode.
"""

import os
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import reference
from repro.core.lengths import (
    extract_outliers,
    relative_differences,
    representative_lengths,
)
from repro.lumscan.engine import ScanEngine
from repro.lumscan.records import (
    NO_RESPONSE,
    ScanDataset,
    SegmentedScanDataset,
)
from repro.lumscan.scanner import Lumscan
from repro.lumscan.serialize import (
    dump_dataset_lshd,
    dump_dataset_manifest,
    load_dataset,
    sniff_format,
)
from repro.lumscan.shards import (
    SegmentEntry,
    adopt_segment,
    append_segment,
    compact_manifest,
    manifest_fingerprint,
    read_manifest,
    read_segment_header,
    write_manifest,
    write_segment_file,
)
from repro.proxynet.luminati import LuminatiClient


def _dataset(offset: int = 0, n: int = 12) -> ScanDataset:
    data = ScanDataset()
    for i in range(offset, offset + n):
        if i % 5 == 4:
            data.append(f"d{i % 4}.example", f"C{i % 3}", NO_RESPONSE, 0,
                        None, error="timeout")
        else:
            data.append(f"d{i % 4}.example", f"C{i % 3}",
                        403 if i % 3 == 0 else 200, 100 + 13 * i,
                        "block" if i % 3 == 0 else None,
                        interfered=(i % 7 == 0))
    return data


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _merged(*parts: ScanDataset) -> ScanDataset:
    flat = ScanDataset()
    for part in parts:
        flat.extend(part)
    return flat


class TestManifestCodec:
    def test_append_then_read_roundtrip(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        append_segment(man, _dataset(12).export_columns())
        manifest = read_manifest(man)
        assert len(manifest.entries) == 2
        assert manifest.rows == 24
        assert sniff_format(man) == "lshm"
        for entry in manifest.entries:
            header = read_segment_header(str(tmp_path / entry.file))
            assert header["fingerprint"] == entry.fingerprint
            assert header["n"] == entry.rows

    def test_manifest_bytes_deterministic(self, tmp_path):
        entries = (SegmentEntry("a.lshd", 3, "ab" * 16),
                   SegmentEntry("b.lshd", 5, "cd" * 16))
        first, second = str(tmp_path / "x.lshm"), str(tmp_path / "y.lshm")
        write_manifest(first, entries)
        write_manifest(second, entries)
        blob = open(first, "rb").read()
        assert blob == open(second, "rb").read()
        assert blob.startswith(b"LSHM")

    def test_fingerprint_depends_on_order(self):
        a = SegmentEntry("a.lshd", 3, "ab" * 16)
        b = SegmentEntry("b.lshd", 5, "cd" * 16)
        assert manifest_fingerprint((a, b)) != manifest_fingerprint((b, a))

    def test_tampered_entry_fingerprint_rejected(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        write_manifest(man, (SegmentEntry("a.lshd", 3, "ab" * 16),))
        blob = open(man, "rb").read().replace(b'"' + b"ab" * 16 + b'"',
                                              b'"' + b"ba" * 16 + b'"')
        open(man, "wb").write(blob)
        with pytest.raises(ValueError, match="fingerprint mismatch"):
            read_manifest(man)

    def test_tampered_row_count_rejected(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        write_manifest(man, (SegmentEntry("a.lshd", 3, "ab" * 16),))
        blob = open(man, "rb").read().replace(b'"rows":3', b'"rows":4', 1)
        open(man, "wb").write(blob)
        with pytest.raises(ValueError, match="row count mismatch"):
            read_manifest(man)

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "not.lshm"
        path.write_bytes(b"LSHD garbage")
        with pytest.raises(ValueError, match="bad magic"):
            read_manifest(str(path))


class TestAppendAndAdopt:
    def test_append_never_rewrites_prior_segments(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        first = read_manifest(man).entries[0]
        seg_path = tmp_path / first.file
        stat_before = seg_path.stat()
        append_segment(man, _dataset(12).export_columns())
        stat_after = seg_path.stat()
        # Same inode, same mtime: the file was not even re-opened for
        # writing — append is O(new rows).
        assert stat_after.st_ino == stat_before.st_ino
        assert stat_after.st_mtime_ns == stat_before.st_mtime_ns
        assert read_manifest(man).entries[0] == first

    def test_append_identical_rows_is_idempotent_on_disk(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        append_segment(man, _dataset(0).export_columns())
        manifest = read_manifest(man)
        assert len(manifest.entries) == 2
        # Content-addressed naming: identical rows -> identical file.
        assert manifest.entries[0].file == manifest.entries[1].file
        segments = [p for p in os.listdir(tmp_path)
                    if p.endswith(".lshd")]
        assert len(segments) == 1

    def test_adopt_renames_finalized_segment(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        loose = str(tmp_path / "loose.lshd")
        write_segment_file(_dataset(0).export_columns(), loose,
                           fingerprint=True)
        manifest = adopt_segment(man, loose)
        assert not os.path.exists(loose)
        assert len(manifest.entries) == 1
        assert os.path.exists(tmp_path / manifest.entries[0].file)
        loaded = load_dataset(man)
        assert _rows(loaded) == _rows(_dataset(0))
        loaded.close()

    def test_adopt_rejects_unfingerprinted_segment(self, tmp_path):
        loose = str(tmp_path / "loose.lshd")
        write_segment_file(_dataset(0).export_columns(), loose,
                           fingerprint=False)
        with pytest.raises(ValueError, match="no.*fingerprint"):
            adopt_segment(str(tmp_path / "data.lshm"), loose)


class TestCompaction:
    def test_compacted_segment_byte_identical_to_sequential(self, tmp_path):
        parts = [_dataset(0, 9), _dataset(9, 7), _dataset(16, 5)]
        man = str(tmp_path / "data.lshm")
        for part in parts:
            append_segment(man, part.export_columns())
        manifest = compact_manifest(man)
        assert len(manifest.entries) == 1
        sequential = str(tmp_path / "sequential.lshd")
        dump_dataset_lshd(_merged(*parts), sequential)
        compacted = tmp_path / manifest.entries[0].file
        assert compacted.read_bytes() == open(sequential, "rb").read()

    def test_compaction_unlinks_old_segments(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        append_segment(man, _dataset(12).export_columns())
        old = read_manifest(man).entries
        compact_manifest(man)
        for entry in old:
            assert not (tmp_path / entry.file).exists()

    def test_single_segment_compaction_is_safe_noop(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        before = read_manifest(man)
        manifest = compact_manifest(man)
        assert manifest.entries == before.entries
        assert (tmp_path / manifest.entries[0].file).exists()

    def test_live_mapping_survives_compaction(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        append_segment(man, _dataset(12).export_columns())
        reader = load_dataset(man)
        assert reader.is_mapped
        compact_manifest(man)
        assert _rows(reader) == _rows(_merged(_dataset(0), _dataset(12)))
        reader.close()


class TestSegmentedDataset:
    @pytest.fixture()
    def split(self):
        parts = [_dataset(0, 8), _dataset(8, 6), _dataset(14, 10)]
        return SegmentedScanDataset(parts), _merged(*parts)

    def test_rows_and_iteration(self, split):
        logical, flat = split
        assert len(logical) == len(flat)
        assert _rows(logical) == _rows(flat)
        assert list(logical) == list(flat)

    def test_global_code_tables_match_merge(self, split):
        logical, flat = split
        assert logical.domains() == flat.domains()
        assert logical.countries() == flat.countries()
        for name in flat.domains():
            assert logical.domain_code(name) == flat.domain_code(name)

    def test_kernels_match_flat(self, split):
        logical, flat = split
        assert logical.count_status(200) == flat.count_status(200)
        assert logical.error_rate_by_domain() == flat.error_rate_by_domain()
        assert logical.response_rate_by_country() == \
            flat.response_rate_by_country()
        assert logical.lengths_by_domain() == flat.lengths_by_domain()

    def test_iter_runs_merges_across_boundaries(self, split):
        logical, flat = split
        assert list(logical.iter_runs()) == list(flat.iter_runs())
        assert [(d, c, s) for d, c, s in logical.pairs()] == \
            [(d, c, s) for d, c, s in flat.pairs()]

    def test_column_arrays_match_flat(self, split):
        logical, flat = split
        assert logical.status_array().tolist() == \
            flat.status_array().tolist()
        assert logical.length_array().tolist() == \
            flat.length_array().tolist()
        assert logical.domain_code_array().tolist() == \
            flat.domain_code_array().tolist()
        assert logical.country_mask(["C1", "C2"]).tolist() == \
            flat.country_mask(["C1", "C2"]).tolist()

    def test_length_heuristics_match_flat(self, split):
        logical, flat = split
        reps = representative_lengths(flat)
        assert representative_lengths(logical) == reps
        assert extract_outliers(logical, reps) == \
            extract_outliers(flat, reps)
        assert relative_differences(logical, reps) == \
            relative_differences(flat, reps)

    def test_materialize_produces_flat_equal(self, split):
        logical, flat = split
        materialized = logical.materialize()
        assert isinstance(materialized, ScanDataset)
        assert _rows(materialized) == _rows(flat)
        assert materialized.domains() == flat.domains()

    def test_read_only_surface(self, split):
        logical, _ = split
        assert not hasattr(logical, "append")
        assert not hasattr(logical, "extend")

    def test_close_closes_parts(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        logical = load_dataset(man)
        assert logical.is_mapped
        assert logical.close() is True
        assert not logical.is_mapped
        assert len(logical) == 0


class TestSerializeManifest:
    def test_dump_load_roundtrip(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        flat = _dataset(0, 20)
        assert dump_dataset_manifest(flat, man) == 20
        loaded = load_dataset(man)
        assert isinstance(loaded, SegmentedScanDataset)
        assert _rows(loaded) == _rows(flat)
        loaded.close()

    def test_load_without_mmap_materializes(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        append_segment(man, _dataset(12).export_columns())
        loaded = load_dataset(man, mmap=False)
        assert isinstance(loaded, ScanDataset)
        assert not loaded.is_mapped
        assert _rows(loaded) == _rows(_merged(_dataset(0), _dataset(12)))

    def test_redump_reuses_existing_segments(self, tmp_path):
        man = str(tmp_path / "data.lshm")
        append_segment(man, _dataset(0).export_columns())
        append_segment(man, _dataset(12).export_columns())
        logical = load_dataset(man)
        stats = {entry.file: (tmp_path / entry.file).stat().st_mtime_ns
                 for entry in read_manifest(man).entries}
        dump_dataset_manifest(logical, man)
        logical.close()
        manifest = read_manifest(man)
        assert len(manifest.entries) == 2
        for entry in manifest.entries:
            # Re-checkpointing rewrote no segment bytes.
            assert (tmp_path / entry.file).stat().st_mtime_ns \
                == stats[entry.file]


class TestEngineAppend:
    def _engine(self, world):
        return ScanEngine(Lumscan(LuminatiClient(world)))

    def _urls(self, world, n):
        urls = []
        for domain in world.population:
            if not domain.dead and not domain.redirect_loop:
                urls.append(f"http://{domain.name}/")
                if len(urls) == n:
                    break
        return urls

    def test_scan_append_matches_fresh_scans(self, nano_world, tmp_path):
        engine = self._engine(nano_world)
        urls = self._urls(nano_world, 6)
        man = str(tmp_path / "scan.lshm")
        first = engine.scan(urls[:3], ["US", "IR"], samples=1,
                            append_to=man)
        assert isinstance(first, SegmentedScanDataset)
        assert len(read_manifest(man).entries) == 1
        first.close()
        combined = engine.scan(urls[3:], ["US", "IR"], samples=1,
                               append_to=man)
        assert len(read_manifest(man).entries) == 2
        fresh_a = engine.scan(urls[:3], ["US", "IR"], samples=1)
        fresh_b = engine.scan(urls[3:], ["US", "IR"], samples=1)
        assert _rows(combined) == _rows(_merged(fresh_a, fresh_b))
        combined.close()

    def test_append_and_dataset_mutually_exclusive(self, nano_world,
                                                   tmp_path):
        engine = self._engine(nano_world)
        with pytest.raises(ValueError, match="mutually exclusive"):
            engine.scan(["http://a.com/"], ["US"], samples=1,
                        dataset=ScanDataset(),
                        append_to=str(tmp_path / "scan.lshm"))


# --------------------------------------------------------------------- #
# Property-based K-way split equivalence (the acceptance criterion:
# kernels over K-segment logical datasets are bit-identical to the flat
# columnar path and to the scalar references, for K in {1, 2, 7}).

_domains = st.sampled_from([f"d{i}.example" for i in range(5)] + ["血.co"])
_countries = st.sampled_from(["US", "DE", "IR", "CN", "血"])
_statuses = st.sampled_from([200, 200, 403, 404, NO_RESPONSE])
_bodies = st.one_of(st.none(),
                    st.text(alphabet=string.printable, max_size=20))
_records = st.lists(
    st.tuples(_domains, _countries, _statuses,
              st.integers(min_value=0, max_value=100_000), _bodies),
    max_size=50)


def _build(records) -> ScanDataset:
    dataset = ScanDataset()
    for domain, country, status, length, body in records:
        if status == NO_RESPONSE:
            dataset.append(domain, country, NO_RESPONSE, 0, None,
                           error="timeout")
        else:
            dataset.append(domain, country, status, length, body)
    return dataset


def _split(records, k, cuts) -> SegmentedScanDataset:
    """Split ``records`` into ``k`` contiguous runs at random cut points."""
    points = sorted(cuts)[: k - 1] if k > 1 else []
    bounds = [0] + [min(p, len(records)) for p in points] + [len(records)]
    bounds = sorted(bounds)
    parts = [_build(records[lo:hi])
             for lo, hi in zip(bounds, bounds[1:])]
    return SegmentedScanDataset(parts)


class TestSegmentedKernelEquivalence:
    @pytest.mark.parametrize("k", [1, 2, 7])
    @given(records=_records,
           cuts=st.lists(st.integers(min_value=0, max_value=50),
                         min_size=6, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_kernels_bit_identical_across_split(self, k, records, cuts):
        logical = _split(records, k, cuts)
        flat = _build(records)
        assert len(logical.parts) == k
        assert _rows(logical) == _rows(flat)
        for status in (200, 403, NO_RESPONSE):
            assert logical.count_status(status) == \
                reference.count_status(flat, status)
        assert logical.error_rate_by_domain() == \
            flat.error_rate_by_domain() == \
            reference.error_rate_by_domain(flat)
        assert logical.response_rate_by_country() == \
            flat.response_rate_by_country() == \
            reference.response_rate_by_country(flat)
        assert logical.lengths_by_domain() == \
            flat.lengths_by_domain() == \
            reference.lengths_by_domain(flat)
        assert list(logical.iter_runs()) == list(flat.iter_runs())

    @pytest.mark.parametrize("k", [2, 7])
    @given(records=_records,
           cuts=st.lists(st.integers(min_value=0, max_value=50),
                         min_size=6, max_size=6),
           countries=st.one_of(st.none(),
                               st.lists(_countries, max_size=3)))
    @settings(max_examples=25, deadline=None)
    def test_length_heuristics_bit_identical_across_split(
            self, k, records, cuts, countries):
        logical = _split(records, k, cuts)
        flat = _build(records)
        reps = reference.representative_lengths(flat, countries)
        assert representative_lengths(logical, countries) == reps
        assert extract_outliers(logical, reps, countries=countries) == \
            reference.extract_outliers(flat, reps, countries=countries)
        assert relative_differences(logical, reps) == \
            reference.relative_differences(flat, reps)
