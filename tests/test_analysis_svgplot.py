"""Tests for the SVG renderer."""

import xml.etree.ElementTree as ET

import pytest

from repro.analysis.figures import FigureData
from repro.analysis.svgplot import render_svg, save_svg


def _figure():
    figure = FigureData(title="Test <figure>", x_label="x & stuff",
                        y_label="y")
    figure.add_series("alpha", [(0.0, 0.0), (0.5, 0.4), (1.0, 1.0)])
    figure.add_series("beta", [(0.0, 1.0), (1.0, 0.0)])
    return figure


class TestRenderSvg:
    def test_valid_xml(self):
        svg = render_svg(_figure())
        root = ET.fromstring(svg)
        assert root.tag.endswith("svg")

    def test_title_escaped(self):
        svg = render_svg(_figure())
        assert "Test &lt;figure&gt;" in svg
        assert "x &amp; stuff" in svg

    def test_one_path_per_series(self):
        svg = render_svg(_figure())
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        paths = root.findall(f"{ns}path")
        assert len(paths) == 2

    def test_legend_entries(self):
        svg = render_svg(_figure())
        assert "alpha" in svg
        assert "beta" in svg

    def test_empty_series_skipped(self):
        figure = _figure()
        figure.add_series("empty", [])
        svg = render_svg(figure)
        root = ET.fromstring(svg)
        ns = "{http://www.w3.org/2000/svg}"
        assert len(root.findall(f"{ns}path")) == 2

    def test_degenerate_ranges(self):
        figure = FigureData(title="flat", x_label="x", y_label="y")
        figure.add_series("point", [(1.0, 2.0), (1.0, 2.0)])
        svg = render_svg(figure)
        ET.fromstring(svg)  # must still be valid

    def test_dense_series_decimated(self):
        figure = FigureData(title="dense", x_label="x", y_label="y")
        figure.add_series("cdf", [(i / 5000, i / 5000) for i in range(5000)])
        svg = render_svg(figure)
        path = next(line for line in svg.splitlines() if "<path" in line)
        assert path.count("L") <= 650

    def test_save_svg(self, tmp_path):
        path = tmp_path / "figure.svg"
        save_svg(_figure(), str(path))
        assert path.read_text().startswith("<svg")

    def test_custom_size(self):
        svg = render_svg(_figure(), width=300, height=200)
        assert 'width="300"' in svg
        assert 'height="200"' in svg
