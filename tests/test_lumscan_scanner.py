"""Tests for the Lumscan scanning tool."""

import pytest

from repro.lumscan.records import NO_RESPONSE
from repro.lumscan.scanner import Lumscan, LumscanConfig
from repro.proxynet.luminati import LuminatiClient


@pytest.fixture
def scanner(nano_world):
    return Lumscan(LuminatiClient(nano_world))


def _clean_urls(world, n=5):
    urls = []
    for domain in world.population:
        if (not domain.dead and not domain.redirect_loop
                and domain.name not in world.policies
                and not domain.censored_in and not domain.bot_protection):
            urls.append(f"http://{domain.name}/")
            if len(urls) == n:
                break
    return urls


class TestScan:
    def test_scan_shape(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 4)
        data = scanner.scan(urls, ["US", "DE"], samples=3)
        assert len(data) == 4 * 2 * 3

    def test_pairs_contiguous_in_scan(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 3)
        data = scanner.scan(urls, ["US"], samples=2)
        assert [len(s) for _, _, s in data.pairs()] == [2, 2, 2]

    def test_scan_records_success(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 3)
        data = scanner.scan(urls, ["US"], samples=3)
        ok = sum(1 for s in data if s.ok)
        assert ok >= len(data) * 0.8

    def test_domain_normalization(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 1)
        www_url = urls[0].replace("http://", "http://www.")
        data = scanner.scan([www_url], ["US"], samples=1)
        assert not data.row(0).domain.startswith("www.")

    def test_resample(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 2)
        domains = [u.split("//")[1].rstrip("/") for u in urls]
        pairs = [(d, "US") for d in domains]
        data = scanner.resample(pairs, samples=4)
        assert len(data) == 8

    def test_scan_into_existing_dataset(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 2)
        data = scanner.scan(urls, ["US"], samples=1)
        scanner.scan(urls, ["DE"], samples=1, dataset=data)
        assert len(data) == 4


class TestReliabilityFeatures:
    def test_retries_reduce_failures(self, nano_world):
        urls = _clean_urls(nano_world, 8)
        no_retry = Lumscan(LuminatiClient(nano_world),
                           config=LumscanConfig(retries=0), seed=1)
        with_retry = Lumscan(LuminatiClient(nano_world),
                             config=LumscanConfig(retries=3), seed=1)
        fail_none = sum(1 for s in no_retry.scan(urls, ["IR"], samples=3)
                        if s.status == NO_RESPONSE)
        fail_some = sum(1 for s in with_retry.scan(urls, ["IR"], samples=3)
                        if s.status == NO_RESPONSE)
        assert fail_some <= fail_none

    def test_superproxy_load_balanced(self, scanner, nano_world):
        urls = _clean_urls(nano_world, 5)
        scanner.scan(urls, ["US", "DE"], samples=2)
        loads = scanner.superproxy_loads
        assert max(loads) - min(loads) <= 1
        assert sum(loads) >= 20

    def test_exit_rotation_limit(self, nano_world):
        luminati = LuminatiClient(nano_world)
        scanner = Lumscan(luminati, config=LumscanConfig(requests_per_exit=10))
        urls = _clean_urls(nano_world, 7)
        # Legacy ad-hoc probes share the scanner's long-lived rotation
        # state; 21 probes must rotate through >= 3 exits.
        for url in urls * 3:
            scanner.probe(url, "US")
        assert scanner._rotation.uses <= 10

    def test_scan_tasks_rotate_independently(self, nano_world):
        # Scan tasks own private rotation state: the shared legacy state
        # must remain untouched by a full scan.
        luminati = LuminatiClient(nano_world)
        scanner = Lumscan(luminati, config=LumscanConfig(requests_per_exit=10))
        scanner.scan(_clean_urls(nano_world, 7), ["US"], samples=3)
        assert scanner._rotation.exit_node is None
        assert scanner._rotation.uses == 0

    def test_luminati_refusal_recorded(self, nano_world):
        luminati = LuminatiClient(nano_world)
        refused_domain = None
        for domain in nano_world.population:
            if luminati._refused(domain.name):
                refused_domain = domain.name
                break
        if refused_domain is None:
            pytest.skip("no refused domain in nano world")
        scanner = Lumscan(luminati)
        data = scanner.scan([f"http://{refused_domain}/"], ["US"], samples=2)
        assert all(s.error == "luminati-refusal" for s in data)
