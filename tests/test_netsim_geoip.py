"""Tests for the geolocation database."""

import pytest

from repro.netsim.geoip import GeoIPDatabase
from repro.netsim.ip import Netblock


def _db(error_rate=0.0, seed=0):
    db = GeoIPDatabase(seed=seed, error_rate=error_rate)
    db.register(Netblock(cidr="10.0.0.0/16", owner="res:US"), "US")
    db.register(Netblock(cidr="10.1.0.0/16", owner="res:IR"), "IR")
    db.register(Netblock(cidr="10.2.0.0/16", owner="res:UA:crimea"), "UA",
                region="crimea")
    return db


class TestLookup:
    def test_basic(self):
        entry = _db().lookup("10.0.5.5")
        assert entry.country == "US"
        assert entry.region is None

    def test_region(self):
        entry = _db().lookup("10.2.0.9")
        assert entry.country == "UA"
        assert entry.region == "crimea"

    def test_unregistered(self):
        assert _db().lookup("99.99.99.99") is None

    def test_true_country(self):
        assert _db().true_country("10.1.0.1") == "IR"
        assert _db().true_country("99.0.0.1") is None

    def test_countries(self):
        assert _db().countries() == ["US", "IR", "UA"]

    def test_error_rate_validation(self):
        with pytest.raises(ValueError):
            GeoIPDatabase(error_rate=1.5)


class TestErrorModel:
    def test_zero_error_never_mislocates(self):
        db = _db(error_rate=0.0)
        for i in range(50):
            address = f"10.1.0.{i + 1}"
            assert db.lookup(address).country == "IR"
            assert not db.is_mislocated(address)

    def test_errors_are_stable_per_address(self):
        db = _db(error_rate=0.3, seed=5)
        first = {f"10.0.1.{i}": db.lookup(f"10.0.1.{i}").country
                 for i in range(1, 40)}
        for address, country in first.items():
            assert db.lookup(address).country == country

    def test_error_rate_approximate(self):
        db = _db(error_rate=0.3, seed=2)
        wrong = sum(1 for i in range(1, 400)
                    if db.lookup(f"10.0.{i % 250}.{i % 200 + 1}").country != "US")
        # 30% +/- generous tolerance over ~400 addresses.
        assert 0.15 < wrong / 400 < 0.45

    def test_mislocated_reports_error(self):
        db = _db(error_rate=0.5, seed=3)
        flags = [db.is_mislocated(f"10.1.2.{i}") for i in range(1, 60)]
        assert any(flags) and not all(flags)

    def test_mislocation_consistent_with_lookup(self):
        db = _db(error_rate=0.4, seed=4)
        for i in range(1, 60):
            address = f"10.1.3.{i}"
            if db.is_mislocated(address):
                assert db.lookup(address).country != "IR"
            else:
                assert db.lookup(address).country == "IR"

    def test_unregistered_not_mislocated(self):
        assert not _db(error_rate=0.5).is_mislocated("99.0.0.1")


class TestCache:
    def test_register_invalidates_cache(self):
        db = _db()
        assert db.lookup("50.0.0.1") is None
        db.register(Netblock(cidr="50.0.0.0/16", owner="res:DE"), "DE")
        assert db.lookup("50.0.0.1").country == "DE"

    def test_fingerprint_changes_on_register(self):
        db = _db()
        before = db.fingerprint()
        db.register(Netblock(cidr="60.0.0.0/16", owner="x"), "FR")
        assert db.fingerprint() != before
