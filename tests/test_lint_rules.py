"""Positive and negative fixtures for every repro.lint rule.

Each rule gets at least one fixture that must flag and one that must
stay clean; the suppression, order-guarantee, confinement, baseline,
tier, and CLI exit-code machinery is exercised on top.  The final tests
assert the *real* tree keeps the acceptance contract: ``src/repro`` is
lint-clean with zero suppressions, and the module-scope
``random.random()`` fixture exits non-zero through the CLI.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import textwrap
from typing import List, Optional, Sequence

import pytest

from repro.lint.cli import main as lint_main
from repro.lint.config import LintConfig
from repro.lint.engine import analyze_sources, module_name_for
from repro.lint.report import (
    EXIT_CLEAN,
    EXIT_FINDINGS,
    EXIT_USAGE,
    Baseline,
    Finding,
    exit_code,
    render_json,
    render_text,
)
from repro.lint.rules import RULES, RULES_BY_ID

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def run_lint(source: str, path: str = "src/repro/fake/mod.py",
             tier: str = "error",
             worker_roots: Optional[Sequence[str]] = None) -> List[Finding]:
    config = LintConfig()
    if worker_roots is not None:
        config.worker_roots = tuple(worker_roots)
    return analyze_sources([(path, tier, textwrap.dedent(source))], config)


def rule_ids(findings: Sequence[Finding]) -> List[str]:
    return [f.rule_id for f in findings]


# --------------------------------------------------------------------- #
# Rule registry sanity

def test_every_rule_has_id_severity_and_rationale():
    assert len(RULES) == len(RULES_BY_ID)
    for rule in RULES:
        assert rule.rule_id
        assert rule.severity in ("error", "warn")
        assert rule.summary and rule.rationale


# --------------------------------------------------------------------- #
# wall-clock

def test_wall_clock_flags_time_time():
    findings = run_lint("""
        import time

        def elapsed():
            return time.time()
    """)
    assert rule_ids(findings) == ["wall-clock"]
    assert findings[0].severity == "error"


def test_wall_clock_flags_datetime_now_and_aliased_import():
    findings = run_lint("""
        import datetime
        from time import perf_counter as pc

        def stamp():
            return datetime.datetime.now(), pc()
    """)
    assert rule_ids(findings) == ["wall-clock", "wall-clock"]


def test_wall_clock_clean_when_injected_clock_is_used():
    findings = run_lint("""
        from repro.util.clock import SystemClock

        def elapsed():
            stopwatch = SystemClock().stopwatch()
            return stopwatch.elapsed()
    """)
    assert findings == []


def test_wall_clock_sanctioned_inside_clock_module():
    findings = run_lint("""
        import time

        def monotonic():
            return time.perf_counter()
    """, path="src/repro/util/clock.py")
    assert findings == []


# --------------------------------------------------------------------- #
# raw-entropy

def test_raw_entropy_flags_urandom_and_uuid4():
    findings = run_lint("""
        import os
        import uuid

        def token():
            return os.urandom(8), uuid.uuid4()
    """)
    assert rule_ids(findings) == ["raw-entropy", "raw-entropy"]


def test_raw_entropy_clean_for_derived_rng():
    findings = run_lint("""
        from repro.util.rng import derive_rng

        def token(seed):
            return derive_rng(seed, "token").random()
    """)
    assert findings == []


# --------------------------------------------------------------------- #
# global-random

def test_global_random_flags_module_scope_draw():
    findings = run_lint("""
        import random

        JITTER = random.random()
    """)
    assert rule_ids(findings) == ["global-random"]


def test_global_random_flags_shuffle_and_numpy_legacy():
    findings = run_lint("""
        import random
        import numpy

        def scramble(items):
            random.shuffle(items)
            return numpy.random.rand()
    """)
    assert rule_ids(findings) == ["global-random", "global-random"]


def test_global_random_allows_seeded_generator_construction():
    findings = run_lint("""
        import random
        import numpy

        def generators(seed):
            return random.Random(seed), numpy.random.default_rng(seed)
    """)
    assert findings == []


# --------------------------------------------------------------------- #
# fs-order

def test_fs_order_flags_bare_listdir_and_iterdir():
    findings = run_lint("""
        import os

        def names(root, path):
            return os.listdir(root) + list(path.iterdir())
    """)
    assert rule_ids(findings) == ["fs-order", "fs-order"]


def test_fs_order_clean_when_wrapped_in_sorted():
    findings = run_lint("""
        import glob
        import os

        def names(root):
            return sorted(os.listdir(root)) + sorted(glob.glob("*.json"))
    """)
    assert findings == []


# --------------------------------------------------------------------- #
# iter-order

def test_iter_order_flags_dict_items_in_serializing_function():
    findings = run_lint("""
        import json

        def save(data, handle):
            rows = [[key, value] for key, value in data.items()]
            json.dump(rows, handle)
    """)
    assert rule_ids(findings) == ["iter-order"]


def test_iter_order_flags_set_iteration_feeding_a_sink():
    findings = run_lint("""
        import json

        def save(handle):
            flags = {"a", "b", "c"}
            json.dump(list(flags), handle)
    """)
    assert rule_ids(findings) == ["iter-order"]


def test_iter_order_clean_without_serialization_sink():
    findings = run_lint("""
        def total(data):
            result = 0
            for key, value in data.items():
                result += value
            return result
    """)
    assert findings == []


def test_iter_order_clean_when_sorted_or_order_free():
    findings = run_lint("""
        import json

        def save(data, handle):
            rows = [[k, v] for k, v in sorted(data.items())]
            json.dump([rows, len(data.keys())], handle)
    """)
    assert findings == []


def test_iter_order_flags_unsorted_dict_feeding_manifest_writer():
    # The manifest writer is a serialization sink: feeding it entries
    # built from unordered dict iteration would make manifest bytes (and
    # the manifest fingerprint) depend on dict history.
    findings = run_lint("""
        from repro.lumscan.shards import write_manifest

        def checkpoint(path, by_name):
            entries = [entry for name, entry in by_name.items()]
            return write_manifest(path, entries)
    """)
    assert rule_ids(findings) == ["iter-order"]


def test_iter_order_clean_when_manifest_entries_are_ordered():
    findings = run_lint("""
        from repro.lumscan.shards import write_manifest

        def checkpoint(path, by_name):
            entries = [entry for name, entry in sorted(by_name.items())]
            return write_manifest(path, entries)
    """)
    assert findings == []


def test_iter_order_flags_unsorted_dict_feeding_shard_writer():
    # The shard codec is a serialization sink: unordered iteration into a
    # segment would make shard bytes depend on dict/set history.
    findings = run_lint("""
        from repro.lumscan.shards import write_shard

        def spill(bodies, spec, seq):
            rows = [[row, body] for row, body in bodies.items()]
            return write_shard(rows, spec, seq)
    """)
    assert rule_ids(findings) == ["iter-order"]


def test_iter_order_clean_when_shard_writer_input_is_sorted():
    findings = run_lint("""
        from repro.lumscan.shards import write_shard

        def spill(bodies, spec, seq):
            rows = [[row, body] for row, body in sorted(bodies.items())]
            return write_shard(rows, spec, seq)
    """)
    assert findings == []


def test_iter_order_flags_unsorted_dict_feeding_worldpack_writer():
    # The worldpack writer is a serialization sink: pack bytes carry a
    # content fingerprint that workers verify, so feeding the writer
    # values built from unordered dict iteration would make the
    # fingerprint depend on dict history.
    findings = run_lint("""
        from repro.websim.worldpack import write_worldpack_file

        def freeze_all(worlds, directory):
            handles = [write_worldpack_file(world, f"{directory}/{name}")
                       for name, world in worlds.items()]
            return handles
    """)
    assert rule_ids(findings) == ["iter-order"]


def test_iter_order_clean_when_worldpack_writer_input_is_sorted():
    findings = run_lint("""
        from repro.websim.worldpack import write_worldpack_file

        def freeze_all(worlds, directory):
            handles = [write_worldpack_file(world, f"{directory}/{name}")
                       for name, world in sorted(worlds.items())]
            return handles
    """)
    assert findings == []


def test_iter_order_honors_ordered_directive():
    findings = run_lint("""
        import json

        def save(data, handle):
            rows = [[k, v] for k, v in data.items()]  # lint: ordered(insertion order is the contract)
            json.dump(rows, handle)
    """)
    assert findings == []


# --------------------------------------------------------------------- #
# shared-mutation

_ENGINE_ROOT = ("repro.fake.mod.Engine.run_task",)


def test_shared_mutation_flags_dict_write_on_worker_path():
    findings = run_lint("""
        class Engine:
            def __init__(self):
                self._cache = {}

            def run_task(self, key):
                self._cache[key] = 1
    """, worker_roots=_ENGINE_ROOT)
    assert rule_ids(findings) == ["shared-mutation"]


def test_shared_mutation_follows_self_method_calls():
    findings = run_lint("""
        class Engine:
            def __init__(self):
                self._seen = []

            def run_task(self, key):
                self._record(key)

            def _record(self, key):
                self._seen.append(key)
    """, worker_roots=_ENGINE_ROOT)
    assert rule_ids(findings) == ["shared-mutation"]


def test_shared_mutation_clean_for_sanctioned_primitives():
    findings = run_lint("""
        from repro.util.cache import LRUCache, MemoDict
        from repro.util.counters import ShardedCounter

        class Engine:
            def __init__(self):
                self._count = ShardedCounter()
                self._pages = LRUCache(capacity=16)
                self._memo = MemoDict()

            def run_task(self, key):
                self._count.increment()
                self._pages.put(key, key)
                self._memo[key] = 1
    """, worker_roots=_ENGINE_ROOT)
    assert findings == []


def test_shared_mutation_clean_under_lock_guard():
    findings = run_lint("""
        import threading

        class Engine:
            def __init__(self):
                self._lock = threading.Lock()
                self._rotation = {}

            def run_task(self, key):
                with self._lock:
                    self._rotation[key] = 1
    """, worker_roots=_ENGINE_ROOT)
    assert findings == []


def test_shared_mutation_respects_confined_directive():
    findings = run_lint("""
        class Engine:
            # lint: confined(per-worker shards merged in parent)
            def __init__(self):
                self._rows = []

            def run_task(self, row):
                self._rows.append(row)
    """, worker_roots=_ENGINE_ROOT)
    assert findings == []


def test_shared_mutation_reaches_across_modules():
    engine = textwrap.dedent("""
        from repro.fake.store import Store

        class Engine:
            def __init__(self, store: Store):
                self.store = store

            def run_task(self, key):
                self.store.remember(key)
    """)
    store = textwrap.dedent("""
        class Store:
            def __init__(self):
                self._seen = set()

            def remember(self, key):
                self._seen.add(key)
    """)
    config = LintConfig()
    config.worker_roots = _ENGINE_ROOT
    findings = analyze_sources(
        [("src/repro/fake/mod.py", "error", engine),
         ("src/repro/fake/store.py", "error", store)], config)
    assert rule_ids(findings) == ["shared-mutation"]
    assert findings[0].path == "src/repro/fake/store.py"


# --------------------------------------------------------------------- #
# spec-pickle

def test_spec_pickle_flags_object_and_lock_fields():
    findings = run_lint("""
        import threading
        from dataclasses import dataclass

        @dataclass(frozen=True)
        class WorkerSpec:
            payload: object
            guard: threading.Lock
    """)
    assert rule_ids(findings) == ["spec-pickle", "spec-pickle"]


def test_spec_pickle_clean_for_leaves_containers_and_project_types():
    findings = run_lint("""
        from dataclasses import dataclass
        from typing import Dict, Optional, Tuple

        @dataclass(frozen=True)
        class InnerConfig:
            seed: int

        @dataclass(frozen=True)
        class WorkerSpec:
            seed: int
            name: Optional[str]
            pairs: Tuple[Tuple[str, int], ...]
            rates: Dict[str, float]
            inner: InnerConfig
    """)
    assert findings == []


def test_spec_pickle_ignores_non_spec_classes():
    findings = run_lint("""
        from dataclasses import dataclass

        @dataclass
        class Holder:
            payload: object
    """)
    assert findings == []


# --------------------------------------------------------------------- #
# Suppression, baseline, tiers, rendering

def test_allow_directive_suppresses_and_exits_clean():
    findings = run_lint("""
        import time

        def legacy():
            return time.time()  # lint: allow(wall-clock: vendored timing shim)
    """)
    assert len(findings) == 1
    assert findings[0].suppressed
    assert findings[0].suppress_reason == "vendored timing shim"
    assert exit_code(findings) == EXIT_CLEAN


def test_allow_directive_is_rule_specific():
    findings = run_lint("""
        import time

        def legacy():
            return time.time()  # lint: allow(fs-order: wrong rule)
    """)
    assert not findings[0].suppressed
    assert exit_code(findings) == EXIT_FINDINGS


def test_directive_inside_string_literal_is_inert():
    findings = run_lint("""
        import time

        def legacy():
            note = "# lint: allow(wall-clock: not a comment)"
            return time.time(), note
    """)
    assert not findings[0].suppressed


def test_baseline_grandfathers_with_multiplicity():
    source = """
        import time

        def first():
            return time.time()

        def second():
            return time.time()
    """
    findings = run_lint(source)
    assert len(findings) == 2
    # Both offending lines hash identically; grandfather only one credit.
    baseline = Baseline.from_findings(findings[:1])
    fresh = run_lint(source)
    baseline.apply(fresh)
    assert [f.baselined for f in fresh] == [True, False]
    assert exit_code(fresh) == EXIT_FINDINGS
    Baseline.from_findings(findings).apply(findings)


def test_baseline_round_trips_through_disk(tmp_path):
    findings = run_lint("""
        import time

        def legacy():
            return time.time()
    """)
    path = str(tmp_path / "lint-baseline.json")
    Baseline.from_findings(findings).dump(path)
    reloaded = Baseline.load(path)
    fresh = run_lint("""
        import time

        def legacy():
            return time.time()
    """)
    reloaded.apply(fresh)
    assert all(f.baselined for f in fresh)
    assert exit_code(fresh) == EXIT_CLEAN


def test_warn_tier_demotes_everything_and_exits_clean():
    findings = run_lint("""
        import time

        def bench():
            return time.time()
    """, path="benchmarks/test_speed.py", tier="warn")
    assert [f.severity for f in findings] == ["warn"]
    assert exit_code(findings) == EXIT_CLEAN


def test_render_json_is_stable_and_timestamp_free():
    findings = run_lint("""
        import time

        def legacy():
            return time.time()
    """)
    first = render_json(findings)
    second = render_json(findings)
    assert first == second
    payload = json.loads(first)
    assert payload["summary"]["errors"] == 1
    assert payload["findings"][0]["rule"] == "wall-clock"
    assert "time" not in payload["summary"]


def test_render_text_hides_suppressed_unless_verbose():
    findings = run_lint("""
        import time

        def legacy():
            return time.time()  # lint: allow(wall-clock: shim)
    """)
    assert "allowed" not in render_text(findings)
    assert "allowed" in render_text(findings, verbose=True)


def test_parse_error_is_reported_not_raised():
    findings = run_lint("def broken(:\n")
    assert rule_ids(findings) == ["parse-error"]
    assert exit_code(findings) == EXIT_FINDINGS


# --------------------------------------------------------------------- #
# CLI exit codes

def test_cli_flags_module_scope_random_fixture(tmp_path, capsys):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("import random\nJITTER = random.random()\n")
    assert lint_main([str(fixture)]) == EXIT_FINDINGS
    assert "global-random" in capsys.readouterr().out


def test_cli_clean_file_exits_zero(tmp_path, capsys):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("def double(x):\n    return 2 * x\n")
    assert lint_main([str(fixture)]) == EXIT_CLEAN
    capsys.readouterr()


def test_cli_missing_path_is_usage_error(tmp_path, capsys):
    missing = tmp_path / "nope"
    assert lint_main([str(missing)]) == EXIT_USAGE
    capsys.readouterr()


def test_cli_json_report_to_file(tmp_path, capsys):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("import time\nSTAMP = time.time()\n")
    out = tmp_path / "report.json"
    code = lint_main([str(fixture), "--format", "json",
                      "--out", str(out)])
    capsys.readouterr()
    assert code == EXIT_FINDINGS
    payload = json.loads(out.read_text())
    assert payload["summary"]["errors"] == 1


def test_cli_write_baseline_then_clean(tmp_path, capsys):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("import time\nSTAMP = time.time()\n")
    baseline = tmp_path / "baseline.json"
    assert lint_main([str(fixture), "--write-baseline",
                      "--baseline", str(baseline)]) == EXIT_CLEAN
    assert lint_main([str(fixture),
                      "--baseline", str(baseline)]) == EXIT_CLEAN
    assert lint_main([str(fixture), "--no-baseline",
                      "--baseline", str(baseline)]) == EXIT_FINDINGS
    capsys.readouterr()


def test_cli_select_restricts_rules(tmp_path, capsys):
    fixture = tmp_path / "fixture.py"
    fixture.write_text("import time\nSTAMP = time.time()\n")
    assert lint_main([str(fixture), "--select", "fs-order"]) == EXIT_CLEAN
    assert lint_main([str(fixture),
                      "--select", "wall-clock"]) == EXIT_FINDINGS
    capsys.readouterr()


def test_cli_list_rules(capsys):
    assert lint_main(["--list-rules"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    for rule in RULES:
        assert rule.rule_id in out


def test_repro_geoblock_lint_subcommand(capsys):
    from repro.cli import main as repro_main

    assert repro_main(["lint", "--list-rules"]) == EXIT_CLEAN
    assert "wall-clock" in capsys.readouterr().out


# --------------------------------------------------------------------- #
# resource-leak (flow-sensitive acquire/release pairing)

def test_resource_leak_flags_early_return_branch():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = open_shard(handle)
            if flag:
                return None
            reader.close()
    """)
    assert rule_ids(findings) == ["resource-leak"]
    assert "open_shard" in findings[0].message
    assert findings[0].trace, "path trace required"
    assert findings[0].trace[0]["line"] == 5


def test_resource_leak_flags_loop_continue_rebinding():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handles):
            for handle in handles:
                reader = open_shard(handle)
                if reader.empty:
                    continue
                reader.close()
    """)
    assert rule_ids(findings) == ["resource-leak"]


def test_resource_leak_clean_when_both_branches_release():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = open_shard(handle)
            if flag:
                reader.close()
                return None
            reader.close()
            return 1
    """)
    assert rule_ids(findings) == []


def test_resource_leak_clean_for_with_block():
    findings = run_lint("""
        from repro.lumscan.shards import ShardExchange

        def f(spec):
            with ShardExchange(spec) as exchange:
                return exchange.spec()
    """)
    assert rule_ids(findings) == []


def test_resource_leak_clean_on_return_handoff():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            return reader
    """)
    assert rule_ids(findings) == []


def test_resource_leak_clean_on_self_store_handoff():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        class Pool:
            def adopt(self, handle):
                self._reader = open_shard(handle)
    """)
    assert rule_ids(findings) == []


def test_resource_leak_clean_with_handoff_directive():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle, consumer):
            reader = open_shard(handle)
            consumer.push(reader)  # lint: handoff(consumer owns it)
    """)
    assert rule_ids(findings) == []


def test_resource_leak_flags_module_release_func_on_one_path_only():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard, release_shard

        def f(handle, flag):
            reader = open_shard(handle)
            if flag:
                release_shard(reader)
    """)
    assert rule_ids(findings) == ["resource-leak"]


def test_resource_leak_respects_none_guard_correlation():
    findings = run_lint("""
        from repro.lumscan.shards import SpillDatasetBuilder

        def f(spill, payload):
            merger = None
            if spill:
                merger = SpillDatasetBuilder(directory=spill)
            try:
                if merger is not None:
                    merger.extend_columns(payload)
            finally:
                if merger is not None:
                    merger.abort()
    """)
    assert rule_ids(findings) == []


# --------------------------------------------------------------------- #
# release-guard (exception-safe cleanup)

def test_release_guard_flags_fallthrough_only_release():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            data = reader.read()
            reader.close()
            return data
    """)
    assert rule_ids(findings) == ["release-guard"]
    # Anchored at the unguarded release, with the full path trace.
    assert findings[0].line == 7
    assert [step["line"] for step in findings[0].trace] == [5, 6, 7]


def test_release_guard_clean_when_release_in_finally():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            try:
                return reader.spec
            finally:
                reader.close()
    """)
    assert rule_ids(findings) == []


def test_release_guard_clean_for_close_and_reraise_handler():
    findings = run_lint("""
        from repro.lumscan.shards import SegmentMapping, decode_shard

        def f(path):
            mapping = SegmentMapping(path)
            try:
                columns = decode_shard(mapping.buffer)
                rows = list(columns)
            except BaseException:
                mapping.close()
                raise
            mapping.close()
            return rows
    """)
    assert rule_ids(findings) == []


def test_release_guard_clean_when_release_call_itself_raises():
    # An exception *inside* close() is the callee's contract, not a
    # missing guard around it.
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            reader.close()
    """)
    assert rule_ids(findings) == []


# --------------------------------------------------------------------- #
# buffer-escape (views must not outlive close())

def test_buffer_escape_flags_view_stored_to_self():
    findings = run_lint("""
        from repro.websim.worldpack import WorldPackReader

        class Cache:
            def load(self, path):
                reader = WorldPackReader(path)
                try:
                    self._codes = reader.array("codes")
                finally:
                    reader.close()
    """)
    assert rule_ids(findings) == ["buffer-escape"]
    assert "self._codes" in findings[0].message
    notes = [step["note"] for step in findings[0].trace]
    assert any("closed" in note for note in notes)


def test_buffer_escape_flags_intermediate_variable_escape():
    findings = run_lint("""
        from repro.lumscan.shards import SegmentMapping

        class Cache:
            def load(self, path):
                mapping = SegmentMapping(path)
                try:
                    raw = mapping.buffer
                    self._raw = raw
                finally:
                    mapping.close()
    """)
    assert rule_ids(findings) == ["buffer-escape"]


def test_buffer_escape_clean_when_view_is_copied():
    findings = run_lint("""
        from repro.websim.worldpack import WorldPackReader

        class Cache:
            def load(self, path):
                reader = WorldPackReader(path)
                try:
                    self._codes = bytes(reader.array("codes"))
                finally:
                    reader.close()
    """)
    assert rule_ids(findings) == []


def test_buffer_escape_clean_when_buffer_travels_with_view():
    findings = run_lint("""
        from repro.websim.worldpack import WorldPackReader

        def f(path):
            reader = WorldPackReader(path)
            return reader, reader.array("codes")
    """)
    assert rule_ids(findings) == []


# --------------------------------------------------------------------- #
# atomic-write (temp-then-rename discipline)

def test_atomic_write_flags_direct_checkpoint_write():
    findings = run_lint("""
        def f(stem, payload):
            with open(f"{stem}.lshd", "wb") as out:
                out.write(payload)
    """)
    assert rule_ids(findings) == ["atomic-write"]
    assert ".lshd" in findings[0].message


def test_atomic_write_flags_write_text_on_manifest():
    findings = run_lint("""
        def f(root, text):
            target = f"{root}/manifest.json"
            target.write_text(text)
    """)
    assert rule_ids(findings) == ["atomic-write"]


def test_atomic_write_flags_temp_never_renamed():
    findings = run_lint("""
        def f(stem, payload):
            tmp = f"{stem}.lshd.tmp"
            with open(tmp, "wb") as out:
                out.write(payload)
    """)
    assert rule_ids(findings) == ["atomic-write"]
    assert "never renamed" in findings[0].message


def test_atomic_write_clean_for_temp_then_rename():
    findings = run_lint("""
        import os

        def f(stem, payload):
            tmp = f"{stem}.lshd.tmp"
            with open(tmp, "wb") as out:
                out.write(payload)
            os.replace(tmp, f"{stem}.lshd")
    """)
    assert rule_ids(findings) == []


def test_atomic_write_clean_for_read_mode_and_unprotected_suffix():
    findings = run_lint("""
        def f(stem):
            with open(f"{stem}.lshd", "rb") as handle:
                head = handle.read(4)
            with open(f"{stem}.log", "w") as log:
                log.write("ok")
            return head
    """)
    assert rule_ids(findings) == []


# --------------------------------------------------------------------- #
# Contract registry: module self-registration

def test_module_declared_contract_is_enforced():
    findings = run_lint("""
        LINT_RESOURCE_CONTRACT = {
            "codec": "probe",
            "resources": [
                {"name": "probe-session",
                 "acquire": ["open_probe"],
                 "release_methods": ["shutdown"]},
            ],
        }

        def f(target, flag):
            session = open_probe(target)
            if flag:
                return None
            session.shutdown()
    """)
    assert rule_ids(findings) == ["resource-leak"]
    assert "probe-session" in findings[0].message


def test_trace_round_trips_through_json():
    findings = run_lint("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = open_shard(handle)
            if flag:
                return None
            reader.close()
    """)
    payload = json.loads(render_json(findings))
    assert payload["version"] == 2
    traces = [f["trace"] for f in payload["findings"]]
    assert traces and all(
        {"line", "note"} <= set(step) for trace in traces for step in trace)


# --------------------------------------------------------------------- #
# CLI: --explain and internal-error reporting

def test_cli_explain_prints_rationale_example_and_fix(capsys):
    assert lint_main(["--explain", "resource-leak"]) == EXIT_CLEAN
    out = capsys.readouterr().out
    assert "resource-leak" in out
    assert "Why:" in out
    assert "Example finding:" in out
    assert "Sanctioned fix:" in out
    assert "# lint: handoff" in out


def test_cli_explain_unknown_rule_is_usage_error(capsys):
    assert lint_main(["--explain", "no-such-rule"]) == EXIT_USAGE
    assert "unknown rule" in capsys.readouterr().err


def test_cli_internal_error_lands_in_json_report(tmp_path, capsys,
                                                 monkeypatch):
    import repro.lint.cli as cli_module

    def boom(config):
        raise RuntimeError("injected analyzer crash")

    monkeypatch.setattr(cli_module, "analyze_paths", boom)
    out_file = tmp_path / "lint-report.json"
    fixture = tmp_path / "fixture.py"
    fixture.write_text("x = 1\n")
    code = lint_main([str(fixture), "--out", str(out_file)])
    err = capsys.readouterr().err
    assert code == EXIT_USAGE
    assert "internal error" in err
    payload = json.loads(out_file.read_text())
    assert payload["internal_error"]["type"] == "RuntimeError"
    assert "injected analyzer crash" in payload["internal_error"]["message"]
    assert "Traceback" in payload["internal_error"]["traceback"]


# --------------------------------------------------------------------- #
# Acceptance: the shipped tree itself

def test_src_repro_is_clean_with_zero_suppressions(capsys):
    src = os.path.join(REPO_ROOT, "src", "repro")
    code = lint_main([src, "--no-baseline"])
    out = capsys.readouterr().out
    assert code == EXIT_CLEAN, out
    assert "0 error(s)" in out
    assert "0 suppressed" in out


def test_default_targets_pass_under_shipped_baseline():
    env = dict(os.environ)
    src_dir = os.path.join(REPO_ROOT, "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-m", "repro.lint"],
        cwd=REPO_ROOT, env=env, capture_output=True, text=True)
    assert result.returncode == EXIT_CLEAN, result.stdout + result.stderr
