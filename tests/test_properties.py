"""Property-based tests (hypothesis) on core data structures and invariants."""

import string

from hypothesis import given, settings, strategies as st

from repro.httpsim.messages import Headers
from repro.httpsim.url import parse_url
from repro.lumscan.records import ScanDataset
from repro.textutil.htmltext import extract_text, normalize_whitespace
from repro.textutil.ngrams import tokenize, word_ngrams
from repro.textutil.tfidf import TfidfVectorizer
from repro.textutil.linkage import _UnionFind, cluster_documents
from repro.util.rng import derive_rng, stable_hash

_hostname_label = st.text(alphabet=string.ascii_lowercase + string.digits,
                          min_size=1, max_size=12)
_hostnames = st.lists(_hostname_label, min_size=2, max_size=4).map(".".join)
_header_names = st.text(alphabet=string.ascii_letters + "-", min_size=1,
                        max_size=20)
_header_values = st.text(alphabet=string.printable.replace("\n", "").replace(
    "\r", ""), min_size=0, max_size=40)


class TestUrlProperties:
    @given(host=_hostnames,
           port=st.integers(min_value=1, max_value=65535),
           path=st.text(alphabet=string.ascii_lowercase + "/", max_size=20))
    def test_parse_str_roundtrip(self, host, port, path):
        url = parse_url(f"http://{host}:{port}/{path}")
        assert parse_url(str(url)) == url

    @given(host=_hostnames)
    def test_registrable_domain_is_suffix(self, host):
        url = parse_url(f"http://{host}/")
        assert url.host.endswith(url.registrable_domain)


class TestHeaderProperties:
    @given(pairs=st.lists(st.tuples(_header_names, _header_values),
                          max_size=15))
    def test_get_all_preserves_insertion_order(self, pairs):
        headers = Headers(pairs)
        for name, _ in pairs:
            values = [v for n, v in pairs if n.lower() == name.lower()]
            assert headers.get_all(name) == values

    @given(pairs=st.lists(st.tuples(_header_names, _header_values),
                          max_size=10),
           name=_header_names, value=_header_values)
    def test_set_then_get(self, pairs, name, value):
        headers = Headers(pairs)
        headers.set(name, value)
        assert headers.get(name) == value
        assert headers.get_all(name) == [value]

    @given(pairs=st.lists(st.tuples(_header_names, _header_values),
                          max_size=10))
    def test_copy_equal_but_independent(self, pairs):
        original = Headers(pairs)
        clone = original.copy()
        assert clone == original
        clone.add("X-Extra", "1")
        assert len(clone) == len(original) + 1


class TestRngProperties:
    @given(parts=st.lists(st.one_of(st.text(max_size=10), st.integers()),
                          min_size=1, max_size=5))
    def test_stable_hash_deterministic(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)

    @given(root=st.integers(), scope=st.text(max_size=10))
    def test_derived_streams_reproducible(self, root, scope):
        a = derive_rng(root, scope)
        b = derive_rng(root, scope)
        assert a.random() == b.random()


class TestTextProperties:
    @given(text=st.text(max_size=200))
    def test_normalize_whitespace_idempotent(self, text):
        once = normalize_whitespace(text)
        assert normalize_whitespace(once) == once

    @given(text=st.text(max_size=200))
    def test_extract_text_no_tags_left(self, text):
        result = extract_text(f"<p>{text.replace('<', '').replace('>', '')}</p>")
        assert "<p>" not in result

    @given(tokens=st.lists(st.text(alphabet=string.ascii_lowercase,
                                   min_size=1, max_size=6), max_size=15))
    def test_ngram_count_formula(self, tokens):
        grams = word_ngrams(tokens, (1, 2))
        expected = len(tokens) + max(0, len(tokens) - 1)
        assert len(grams) == expected

    @given(text=st.text(max_size=100))
    def test_tokens_lowercase_alnum(self, text):
        for token in tokenize(text):
            assert token == token.lower()
            assert token.isalnum()


class TestTfidfProperties:
    @given(docs=st.lists(
        st.text(alphabet=string.ascii_lowercase + " ", min_size=1,
                max_size=60),
        min_size=1, max_size=8))
    @settings(max_examples=30, deadline=None)
    def test_rows_unit_norm_or_zero(self, docs):
        import numpy as np
        matrix = TfidfVectorizer(html_input=False).fit_transform(docs)
        norms = np.sqrt(matrix.multiply(matrix).sum(axis=1)).A.ravel()
        for norm in norms:
            assert norm == 0.0 or abs(norm - 1.0) < 1e-9

    @given(doc=st.text(alphabet=string.ascii_lowercase + " ", min_size=1,
                       max_size=60))
    @settings(max_examples=30, deadline=None)
    def test_self_similarity_one(self, doc):
        matrix = TfidfVectorizer(html_input=False).fit_transform([doc, doc])
        if matrix.nnz == 0:
            return
        sim = (matrix[0] @ matrix[1].T).toarray()[0, 0]
        assert abs(sim - 1.0) < 1e-9


class TestUnionFindProperties:
    @given(n=st.integers(min_value=1, max_value=40),
           edges=st.lists(st.tuples(st.integers(0, 39), st.integers(0, 39)),
                          max_size=60))
    def test_partition_invariants(self, n, edges):
        uf = _UnionFind(n)
        for a, b in edges:
            if a < n and b < n:
                uf.union(a, b)
        roots = [uf.find(i) for i in range(n)]
        # Roots are themselves fixed points.
        for root in roots:
            assert uf.find(root) == root
        # Connected pairs share roots.
        for a, b in edges:
            if a < n and b < n:
                assert uf.find(a) == uf.find(b)


class TestClusteringProperties:
    @given(docs=st.lists(
        st.sampled_from(["alpha beta gamma page", "delta epsilon words",
                         "alpha beta gamma page", "zeta eta theta text"]),
        min_size=1, max_size=12))
    @settings(max_examples=25, deadline=None)
    def test_identical_documents_share_cluster(self, docs):
        result = cluster_documents(docs, distance_threshold=0.2)
        by_text = {}
        for i, doc in enumerate(docs):
            by_text.setdefault(doc, set()).add(result.labels[i])
        for labels in by_text.values():
            assert len(labels) == 1

    @given(docs=st.lists(st.text(alphabet=string.ascii_lowercase + " ",
                                 min_size=1, max_size=40),
                         min_size=1, max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_labels_cover_all_docs(self, docs):
        result = cluster_documents(docs, distance_threshold=0.4)
        assert len(result.labels) == len(docs)
        assert sum(len(m) for m in result.clusters.values()) == len(docs)


class TestCookieJarProperties:
    @given(cookies=st.lists(
        st.tuples(st.text(alphabet=string.ascii_lowercase + "_",
                          min_size=1, max_size=12),
                  st.text(alphabet=string.ascii_letters + string.digits,
                          min_size=0, max_size=20)),
        max_size=10))
    def test_set_then_get(self, cookies):
        from repro.httpsim.cookies import CookieJar
        jar = CookieJar()
        final = {}
        for name, value in cookies:
            jar.set_cookie("host.com", name, value)
            final[name] = value
        for name, value in final.items():
            assert jar.get("host.com", name) == value

    @given(cookies=st.dictionaries(
        st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
        st.text(alphabet=string.ascii_letters, min_size=1, max_size=10),
        max_size=6))
    def test_header_roundtrip(self, cookies):
        from repro.httpsim.cookies import CookieJar
        from repro.httpsim.messages import Headers
        source = CookieJar()
        for name, value in cookies.items():
            source.set_cookie("h.com", name, value)
        header = source.cookie_header("h.com")
        if header is None:
            assert not cookies
            return
        # Parse it back the way the world does.
        parsed = dict(pair.strip().partition("=")[::2]
                      for pair in header.split(";"))
        assert parsed == cookies


class TestSerializationProperties:
    @given(rows=st.lists(
        st.tuples(
            st.sampled_from(["a.com", "b.net", "c.org"]),
            st.sampled_from(["US", "IR"]),
            st.sampled_from([200, 403, 451, 0]),
            st.text(alphabet=string.printable, max_size=80)),
        max_size=15))
    @settings(max_examples=30, deadline=None)
    def test_jsonl_roundtrip(self, rows, tmp_path_factory):
        from repro.lumscan.records import ScanDataset
        from repro.lumscan.serialize import dump_dataset, load_dataset
        data = ScanDataset()
        for domain, country, status, body in rows:
            if status == 0:
                data.append(domain, country, 0, 0, None, error="timeout")
            else:
                data.append(domain, country, status, len(body), body)
        path = tmp_path_factory.mktemp("ser") / "scan.jsonl"
        dump_dataset(data, path)
        loaded = load_dataset(path)
        assert len(loaded) == len(data)
        for i in range(len(data)):
            assert loaded.row(i) == data.row(i)


class TestScanDatasetProperties:
    @given(rows=st.lists(
        st.tuples(_hostname_label, st.sampled_from(["US", "IR", "CN"]),
                  st.sampled_from([200, 403, 0]),
                  st.integers(min_value=0, max_value=10_000)),
        max_size=30))
    def test_row_roundtrip(self, rows):
        data = ScanDataset()
        for domain, country, status, length in rows:
            body = "x" * length if status != 0 else None
            data.append(f"{domain}.com", country, status, length, body)
        assert len(data) == len(rows)
        for i, (domain, country, status, length) in enumerate(rows):
            sample = data.row(i)
            assert sample.domain == f"{domain}.com"
            assert sample.country == country
            assert sample.status == status
            assert sample.length == length

    @given(rows=st.lists(
        st.tuples(st.sampled_from(["a.com", "b.com"]),
                  st.sampled_from(["US", "IR"])),
        max_size=20))
    def test_pairs_partition_dataset(self, rows):
        data = ScanDataset()
        for domain, country in rows:
            data.append(domain, country, 200, 10, "x" * 10)
        total = sum(len(samples) for _, _, samples in data.pairs())
        assert total == len(data)
