"""Edge cases for the interactive browser and observation pools."""

import pytest

from repro.core.pipeline import build_observation_pools
from repro.lumscan.scanner import Lumscan
from repro.proxynet.browser import InteractiveBrowser
from repro.proxynet.luminati import LuminatiClient


class TestBrowserEdges:
    def test_plain_page_no_challenge(self, nano_world):
        domain = next(d for d in nano_world.population
                      if not d.dead and not d.redirect_loop
                      and d.name not in nano_world.policies
                      and not d.censored_in and not d.bot_protection)
        browser = InteractiveBrowser(
            nano_world, nano_world.residential_address("US"))
        result = browser.visit(f"http://{domain.name}/")
        assert result.ok
        assert result.response.status == 200
        assert result.challenges_solved == 0

    def test_dead_domain(self, nano_world):
        domain = next(d for d in nano_world.population if d.dead)
        browser = InteractiveBrowser(
            nano_world, nano_world.residential_address("US"))
        result = browser.visit(f"http://{domain.name}/")
        assert not result.ok
        assert result.error == "fetch-error"

    def test_redirect_loop_domain(self, nano_world):
        domain = next(d for d in nano_world.population if d.redirect_loop)
        browser = InteractiveBrowser(
            nano_world, nano_world.residential_address("US"))
        result = browser.visit(f"http://{domain.name}/")
        assert not result.ok

    def test_geoblocked_page_returned_as_is(self, nano_world):
        # A block page is not a challenge; the browser must not loop.
        import random
        pair = None
        for name, policy in nano_world.policies.items():
            domain = nano_world.population.get(name)
            if (policy.is_geoblocking and policy.action == "page"
                    and not domain.dead and not domain.redirect_loop
                    and not domain.censored_in):
                country = next((c for c in sorted(policy.blocked_countries)
                                if c in nano_world.registry
                                and nano_world.registry.get(c).luminati), None)
                if country:
                    pair = (name, country)
                    break
        if pair is None:
            pytest.skip("no blocked pair")
        name, country = pair
        rng = random.Random(1)
        for _ in range(5):
            ip = nano_world.residential_address(country, rng)
            browser = InteractiveBrowser(nano_world, ip, human=True)
            result = browser.visit(f"http://{name}/")
            if result.ok and result.response.status == 403:
                assert result.challenges_solved == 0
                return
        pytest.skip("geolocation noise prevented a clean observation")


class TestObservationPools:
    def test_pools_shape(self, nano_world, nano_top10k):
        pairs = [(c.domain, c.country) for c in nano_top10k.confirmed][:3]
        if not pairs:
            pytest.skip("no confirmed pairs")
        scanner = Lumscan(LuminatiClient(nano_world), seed=2)
        pools = build_observation_pools(nano_world, scanner, pairs,
                                        nano_top10k.registry, samples=15)
        assert set(pools) == set(pairs)
        for pool in pools.values():
            assert len(pool) == 15
            assert all(isinstance(v, bool) for v in pool)

    def test_known_blockers_mostly_true(self, nano_world, nano_top10k):
        pairs = [(c.domain, c.country) for c in nano_top10k.confirmed][:3]
        if not pairs:
            pytest.skip("no confirmed pairs")
        scanner = Lumscan(LuminatiClient(nano_world), seed=3)
        pools = build_observation_pools(nano_world, scanner, pairs,
                                        nano_top10k.registry, samples=20)
        for pool in pools.values():
            assert sum(pool) / len(pool) >= 0.6
