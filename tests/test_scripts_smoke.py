"""Structural checks for the scripts/ directory."""

import ast
import pathlib

import pytest

SCRIPTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "scripts"
SCRIPTS = sorted(SCRIPTS_DIR.glob("*.py"))


@pytest.mark.parametrize("path", SCRIPTS, ids=lambda p: p.stem)
class TestScriptStructure:
    def test_parses(self, path):
        assert ast.parse(path.read_text()) is not None

    def test_has_main_returning_exit_code(self, path):
        tree = ast.parse(path.read_text())
        functions = {node.name for node in ast.walk(tree)
                     if isinstance(node, ast.FunctionDef)}
        assert "main" in functions

    def test_has_docstring(self, path):
        assert ast.get_docstring(ast.parse(path.read_text()))


def test_expected_scripts_present():
    names = {p.stem for p in SCRIPTS}
    assert {"run_experiments", "render_figures", "seed_stability"} <= names
