"""Tests for Headers, Request, Response."""

from repro.httpsim.messages import Headers, Request, Response
from repro.httpsim.url import parse_url


class TestHeaders:
    def test_case_insensitive_get(self):
        headers = Headers([("Content-Type", "text/html")])
        assert headers.get("content-type") == "text/html"
        assert headers.get("CONTENT-TYPE") == "text/html"

    def test_get_default(self):
        assert Headers().get("X-Missing", "fallback") == "fallback"

    def test_get_first_of_multiple(self):
        headers = Headers([("Set-Cookie", "a=1"), ("Set-Cookie", "b=2")])
        assert headers.get("set-cookie") == "a=1"

    def test_get_all_preserves_order(self):
        headers = Headers([("X", "1"), ("Y", "2"), ("X", "3")])
        assert headers.get_all("x") == ["1", "3"]

    def test_add_appends(self):
        headers = Headers()
        headers.add("A", "1")
        headers.add("A", "2")
        assert headers.get_all("A") == ["1", "2"]

    def test_set_replaces_all(self):
        headers = Headers([("A", "1"), ("a", "2")])
        headers.set("A", "3")
        assert headers.get_all("A") == ["3"]

    def test_remove(self):
        headers = Headers([("A", "1"), ("B", "2"), ("a", "3")])
        headers.remove("a")
        assert "A" not in headers
        assert headers.get("B") == "2"

    def test_contains(self):
        headers = Headers([("CF-RAY", "abc")])
        assert "cf-ray" in headers
        assert "X-Other" not in headers

    def test_contains_non_string(self):
        assert 42 not in Headers([("A", "1")])

    def test_len_counts_fields(self):
        assert len(Headers([("A", "1"), ("A", "2")])) == 2

    def test_copy_is_independent(self):
        original = Headers([("A", "1")])
        clone = original.copy()
        clone.add("B", "2")
        assert "B" not in original

    def test_equality(self):
        assert Headers([("A", "1")]) == Headers([("A", "1")])
        assert Headers([("A", "1")]) != Headers([("A", "2")])

    def test_iteration_order(self):
        pairs = [("B", "2"), ("A", "1")]
        assert list(Headers(pairs)) == pairs


class TestRequest:
    def test_host_property(self):
        request = Request(url=parse_url("http://example.com/x"))
        assert request.host == "example.com"

    def test_default_method(self):
        assert Request(url=parse_url("http://e.com/")).method == "GET"

    def test_with_url_keeps_headers(self):
        request = Request(url=parse_url("http://a.com/"),
                          headers=Headers([("X", "1")]))
        retargeted = request.with_url(parse_url("https://b.com/"))
        assert retargeted.url.host == "b.com"
        assert retargeted.headers.get("X") == "1"

    def test_with_url_copies_headers(self):
        request = Request(url=parse_url("http://a.com/"))
        retargeted = request.with_url(parse_url("http://b.com/"))
        retargeted.headers.add("Y", "2")
        assert "Y" not in request.headers


class TestResponse:
    def test_reason_phrase(self):
        assert Response(status=403).reason == "Forbidden"
        assert Response(status=451).reason == "Unavailable For Legal Reasons"

    def test_is_redirect_requires_location(self):
        response = Response(status=301)
        assert not response.is_redirect
        response.headers.add("Location", "http://x.com/")
        assert response.is_redirect

    def test_200_is_not_redirect(self):
        response = Response(status=200)
        response.headers.add("Location", "http://x.com/")
        assert not response.is_redirect

    def test_location(self):
        response = Response(status=302)
        response.headers.add("Location", "/next")
        assert response.location == "/next"

    def test_len_is_body_length(self):
        assert len(Response(status=200, body="hello")) == 5
