"""Tests for the executive-summary generator."""

from repro.analysis.summary import executive_summary, paper_comparison_rows


def _findings():
    return {
        "top10k.safe_domains": 8003,
        "top10k.instances": 596,
        "top10k.unique_domains": 100,
        "top10k.countries_blocked": 165,
        "top10k.top_countries": ["SY", "IR", "SD", "CU"],
        "top10k.appengine_rate": 0.407,
        "top10k.cloudflare_rate": 0.031,
        "top10k.cloudfront_rate": 0.014,
        "top10k.gt_precision": 1.0,
        "top10k.gt_recall": 0.95,
        "top1m.rate_any": 0.044,
        "ooni.domain_fraction": 0.09,
        "timeout.confirmed": 12,
        "timeout.unambiguous": 5,
        "appdiff.feature_findings": 7,
        "appdiff.price_findings": 11,
        "appdiff.gt_precision": 0.9,
    }


class TestExecutiveSummary:
    def test_full_summary_mentions_key_numbers(self):
        text = executive_summary(_findings())
        assert "596 geoblocking instances" in text
        assert "SY, IR, SD, CU" in text
        assert "40.7%" in text
        assert "100.0% precision" in text
        assert "9.0% of the censorship test list" in text

    def test_partial_findings(self):
        text = executive_summary({"top1m.rate_any": 0.05})
        assert "5.0%" in text
        assert text.startswith("- ")
        assert len(text.splitlines()) == 1

    def test_empty_findings(self):
        assert executive_summary({}) == "No findings recorded."

    def test_extension_lines(self):
        text = executive_summary(_findings())
        assert "timeout-geoblocking detector" in text
        assert "feature-removal" in text


class TestPaperComparisonRows:
    def test_only_referenced_keys(self):
        rows = paper_comparison_rows({
            "top10k.instances": 500,
            "made.up.key": 1,
        })
        assert len(rows) == 1
        key, measured, paper = rows[0]
        assert key == "top10k.instances"
        assert measured == 500
        assert paper == 596

    def test_sorted_by_key(self):
        rows = paper_comparison_rows(_findings())
        keys = [r[0] for r in rows]
        assert keys == sorted(keys)
