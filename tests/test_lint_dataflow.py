"""Unit tests of the lint CFG builder and resource-lifetime dataflow.

These exercise the machinery under the flow-sensitive rules directly:
``finally`` duplication (one finally copy per way control can enter it),
``with``-block unwinding, loop back edges, exceptional edges, None-guard
edge labeling, alias-aware release, and the exceptional-edge state
refinements (handoff directives, failures inside the release call).
"""

from __future__ import annotations

import ast
import textwrap
from typing import List

from repro.lint.cfg import (
    KIND_BRANCH,
    KIND_LOOP,
    KIND_STMT,
    KIND_WITH_EXIT,
    build_cfg,
)
from repro.lint.config import LintConfig
from repro.lint.engine import analyze_sources
from repro.lint.report import Finding

LIFETIME_RULES = ("resource-leak", "release-guard", "buffer-escape",
                  "atomic-write")


def cfg_for(source: str):
    tree = ast.parse(textwrap.dedent(source).strip("\n"))
    func = next(node for node in ast.walk(tree)
                if isinstance(node, (ast.FunctionDef,
                                     ast.AsyncFunctionDef)))
    return build_cfg(func)


def lifetime_findings(source: str) -> List[Finding]:
    config = LintConfig(targets=(), selected_rules=LIFETIME_RULES)
    return analyze_sources(
        [("src/repro/fake/mod.py", "error", textwrap.dedent(source))],
        config)


def nodes_at_line(cfg, line: int):
    return [node for node in cfg.nodes if node.line == line]


# --------------------------------------------------------------------- #
# CFG structure

def test_straight_line_reaches_exit():
    cfg = cfg_for("""
        def f(x):
            y = x + 1
            return y
    """)
    stmts = [n for n in cfg.nodes if n.kind == KIND_STMT]
    assert len(stmts) == 2
    return_node = stmts[-1]
    assert cfg.exit in return_node.succ


def test_call_statements_get_exceptional_edges():
    cfg = cfg_for("""
        def f(x):
            y = g(x)
            z = y + 1
            return z
    """)
    call_node = nodes_at_line(cfg, 2)[0]
    arith_node = nodes_at_line(cfg, 3)[0]
    assert cfg.raise_exit in call_node.exc
    assert arith_node.exc == []


def test_raise_routes_only_to_raise_exit():
    cfg = cfg_for("""
        def f():
            raise ValueError("boom")
    """)
    raise_node = nodes_at_line(cfg, 2)[0]
    assert raise_node.succ == []
    assert cfg.raise_exit in raise_node.exc


def test_finally_body_is_duplicated_per_entry_path():
    # Normal completion, exception propagation, and the early return
    # each get their own copy of the finally body.
    cfg = cfg_for("""
        def f(handle, flag):
            try:
                if flag:
                    return 1
                work(handle)
            finally:
                handle.close()
    """)
    close_copies = nodes_at_line(cfg, 7)
    assert len(close_copies) >= 3


def test_return_in_try_unwinds_through_finally_to_exit():
    cfg = cfg_for("""
        def f(handle):
            try:
                return 1
            finally:
                handle.close()
    """)
    return_node = nodes_at_line(cfg, 3)[0]
    # The return must NOT edge straight to exit; it threads a finally
    # copy first.
    assert cfg.exit not in return_node.succ

    def reaches_exit_via(line: int, start: int) -> bool:
        seen, work, via = set(), [start], False
        while work:
            index = work.pop()
            if index in seen:
                continue
            seen.add(index)
            node = cfg.node(index)
            if node.line == line:
                via = True
            if index == cfg.exit:
                return via
            work.extend(node.succ)
        return False

    assert reaches_exit_via(5, return_node.index)


def test_loop_has_back_edge_and_after_path():
    cfg = cfg_for("""
        def f(items):
            for item in items:
                use(item)
            return None
    """)
    head = next(n for n in cfg.nodes if n.kind == KIND_LOOP)
    body = nodes_at_line(cfg, 3)[0]
    assert body.index in head.succ
    assert head.index in body.succ          # back edge


def test_break_unwinds_through_with_exit():
    cfg = cfg_for("""
        def f(items, cm):
            for item in items:
                with cm:
                    break
            return None
    """)
    with_exits = [n for n in cfg.nodes if n.kind == KIND_WITH_EXIT]
    assert with_exits, "break must thread a with-exit node"


def test_if_branch_edges_are_labeled():
    cfg = cfg_for("""
        def f(handle):
            if handle is not None:
                handle.close()
            return None
    """)
    branch = next(n for n in cfg.nodes if n.kind == KIND_BRANCH)
    assert branch.true_succ is not None
    assert branch.false_succ is not None
    assert branch.true_succ != branch.false_succ
    # True edge enters the body (the close call at line 3).
    assert cfg.node(branch.true_succ).line == 3


def test_while_none_test_edges_are_labeled():
    cfg = cfg_for("""
        def f(queue):
            item = queue.pop()
            while item is not None:
                item = queue.pop()
            return None
    """)
    head = next(n for n in cfg.nodes if n.kind == KIND_LOOP)
    assert head.true_succ is not None and head.false_succ is not None


# --------------------------------------------------------------------- #
# Dataflow semantics

def test_release_through_alias_covers_all_bindings():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            alias = reader
            alias.close()
    """)
    assert findings == []


def test_del_of_sole_binding_is_a_leak():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            del reader
    """)
    assert [f.rule_id for f in findings] == ["resource-leak"]


def test_del_of_alias_keeps_other_binding_alive():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle):
            reader = open_shard(handle)
            alias = reader
            del alias
            reader.close()
    """)
    assert findings == []


def test_early_raise_before_release_is_guard_finding():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = open_shard(handle)
            if flag:
                raise ValueError("bad")
            reader.close()
    """)
    assert [f.rule_id for f in findings] == ["release-guard"]


def test_exception_in_loop_body_with_finally_is_clean():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handles):
            for handle in handles:
                reader = open_shard(handle)
                try:
                    consume(reader)
                finally:
                    reader.close()
    """)
    assert findings == []


def test_handoff_directive_covers_exceptional_edge():
    # The push itself can raise; the documented transfer covers that
    # path too (the statement is the handoff).
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle, consumer):
            reader = open_shard(handle)
            consumer.push(reader)  # lint: handoff(consumer owns it)
    """)
    assert findings == []


def test_fluent_chain_acquisition_is_tracked():
    findings = lifetime_findings("""
        from repro.lumscan.shards import ShardExchange

        def f(spec, flag):
            exchange = ShardExchange(spec).open()
            if flag:
                return None
            exchange.close()
    """)
    assert [f.rule_id for f in findings] == ["resource-leak"]


def test_with_managed_resource_never_leaks_on_raise():
    findings = lifetime_findings("""
        from repro.lumscan.shards import ShardExchange

        def f(spec, flag):
            with ShardExchange(spec) as exchange:
                if flag:
                    raise ValueError("bad")
                use(exchange)
    """)
    assert findings == []


def test_none_guard_prunes_infeasible_leak_path():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = None
            if flag:
                reader = open_shard(handle)
            if reader is not None:
                reader.close()
    """)
    assert findings == []


def test_truthiness_guard_prunes_like_none_guard():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = None
            if flag:
                reader = open_shard(handle)
            if reader:
                reader.close()
    """)
    assert findings == []


def test_unguarded_branch_still_leaks_despite_other_guards():
    findings = lifetime_findings("""
        from repro.lumscan.shards import open_shard

        def f(handle, flag):
            reader = open_shard(handle)
            if flag:
                return None
            if reader is not None:
                reader.close()
    """)
    assert [f.rule_id for f in findings] == ["resource-leak"]
