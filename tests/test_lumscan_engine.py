"""Parallel scan engine: determinism, sharding, and merge-order tests.

The engine's correctness contract is byte-identical output to the serial
scan for any worker count — verified here record-by-record.
"""

import pytest

from repro.lumscan.engine import (
    ProbeTask,
    ScanEngine,
    resample_tasks,
    scan_tasks,
)
from repro.lumscan.scanner import Lumscan, LumscanConfig
from repro.proxynet.luminati import LuminatiClient


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _clean_urls(world, n):
    urls = []
    for domain in world.population:
        if not domain.dead and not domain.redirect_loop:
            urls.append(f"http://{domain.name}/")
            if len(urls) == n:
                break
    return urls


class TestTaskEnumeration:
    def test_scan_tasks_serial_order(self):
        tasks = scan_tasks(["http://a.com/", "http://b.com/"], ["US", "IR"],
                           samples=2, epoch=3)
        assert len(tasks) == 8
        assert tasks[0] == ProbeTask("US", "http://a.com/", "a.com", 0, 3)
        assert tasks[1] == ProbeTask("US", "http://a.com/", "a.com", 1, 3)
        assert tasks[2].domain == "b.com"
        assert tasks[4].country == "IR"

    def test_scan_tasks_strip_www(self):
        tasks = scan_tasks(["http://www.a.com/"], ["US"], samples=1)
        assert tasks[0].domain == "a.com"

    def test_resample_tasks_order(self):
        tasks = resample_tasks([("a.com", "US"), ("b.com", "IR")],
                               samples=2, epoch=1)
        assert [t.domain for t in tasks] == ["a.com", "a.com", "b.com", "b.com"]
        assert tasks[0].url == "http://a.com/"
        assert all(t.epoch == 1 for t in tasks)

    def test_invalid_workers_rejected(self, nano_world):
        scanner = Lumscan(LuminatiClient(nano_world))
        with pytest.raises(ValueError):
            ScanEngine(scanner, workers=0)
        with pytest.raises(ValueError):
            ScanEngine(scanner, chunk_size=0)


class TestParallelSerialDeterminism:
    """Same seed, workers in {1, 2, 8} -> identical ScanDataset."""

    @pytest.fixture(scope="class")
    def scan_inputs(self, nano_world):
        urls = _clean_urls(nano_world, 12)
        return urls, ["US", "IR", "DE"]

    @pytest.fixture(scope="class")
    def serial_scan(self, nano_world, scan_inputs):
        urls, countries = scan_inputs
        scanner = Lumscan(LuminatiClient(nano_world), seed=11)
        return scanner.scan(urls, countries, samples=3)

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_engine_matches_serial_scan(self, nano_world, scan_inputs,
                                        serial_scan, workers):
        urls, countries = scan_inputs
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=workers, chunk_size=5)
        parallel = engine.scan(urls, countries, samples=3)
        assert len(parallel) == len(serial_scan)
        assert _rows(parallel) == _rows(serial_scan)

    @pytest.mark.parametrize("workers", [2, 8])
    def test_resample_matches_serial(self, nano_world, workers):
        urls = _clean_urls(nano_world, 6)
        pairs = [(u.split("//")[1].rstrip("/"), c)
                 for u in urls for c in ("US", "IR")]
        serial = Lumscan(LuminatiClient(nano_world), seed=2).resample(
            pairs, samples=5, epoch=1)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=2),
                            workers=workers, chunk_size=4)
        assert _rows(engine.resample(pairs, samples=5, epoch=1)) == _rows(serial)

    def test_shared_world_interleaving_harmless(self, nano_world):
        # One world instance serves both runs back-to-back: per-task RNG
        # means earlier traffic cannot perturb later scans.
        luminati = LuminatiClient(nano_world)
        urls = _clean_urls(nano_world, 8)
        first = Lumscan(luminati, seed=4).scan(urls, ["US", "IR"], samples=2)
        again = ScanEngine(Lumscan(luminati, seed=4), workers=8).scan(
            urls, ["US", "IR"], samples=2)
        assert _rows(first) == _rows(again)

    def test_chunk_size_irrelevant(self, nano_world, scan_inputs):
        urls, countries = scan_inputs
        runs = []
        for chunk in (1, 3, 1000):
            engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                                workers=4, chunk_size=chunk)
            runs.append(_rows(engine.scan(urls, countries, samples=2)))
        assert runs[0] == runs[1] == runs[2]

    def test_workers_param_on_scanner(self, nano_world, scan_inputs):
        urls, countries = scan_inputs
        a = Lumscan(LuminatiClient(nano_world), seed=9).scan(
            urls, countries, samples=2)
        b = Lumscan(LuminatiClient(nano_world), seed=9).scan(
            urls, countries, samples=2, workers=4)
        assert _rows(a) == _rows(b)

    def test_pairs_stay_contiguous_under_parallelism(self, nano_world,
                                                     scan_inputs):
        urls, countries = scan_inputs
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=8, chunk_size=2)
        data = engine.scan(urls, countries, samples=3)
        assert all(len(samples) == 3 for _, _, samples in data.pairs())

    def test_merge_into_existing_dataset(self, nano_world):
        urls = _clean_urls(nano_world, 3)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=1),
                            workers=2)
        data = engine.scan(urls, ["US"], samples=1)
        engine.scan(urls, ["DE"], samples=1, dataset=data)
        assert len(data) == 6
        assert data.countries() == ["US", "DE"]


class TestStudyParity:
    def test_top10k_study_identical_across_workers(self, nano_world):
        from repro.core.pipeline import StudyConfig, run_top10k_study

        serial = run_top10k_study(nano_world, config=StudyConfig(workers=1))
        parallel = run_top10k_study(nano_world, config=StudyConfig(workers=4))
        assert _rows(serial.initial) == _rows(parallel.initial)
        assert serial.top_blocking_countries == parallel.top_blocking_countries
        assert ([(c.domain, c.country, c.page_type) for c in serial.confirmed]
                == [(c.domain, c.country, c.page_type)
                    for c in parallel.confirmed])
