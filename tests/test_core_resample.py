"""Tests for the 3/20-sample confirmation protocol and sampling curves."""

import random

import pytest

from repro.core.resample import (
    agreement_distribution,
    block_rates,
    confirm_blocks,
    consistency_cdf,
    draw_block_rates,
    false_negative_curve,
    find_candidate_pairs,
)
from repro.lumscan.records import NO_RESPONSE, ScanDataset
from repro.websim import blockpages


def _block_body(rng, page_type=blockpages.CLOUDFLARE_BLOCK,
                host="x.com", country="IR"):
    return blockpages.render(page_type, rng, host, country).body


def _initial_dataset(rng):
    data = ScanDataset()
    # x.com/IR: blocked in all 3 samples.
    for _ in range(3):
        body = _block_body(rng)
        data.append("x.com", "IR", 403, len(body), body)
    # x.com/US: fine.
    for _ in range(3):
        data.append("x.com", "US", 200, 9_000, None)
    # y.com/SY: one block page out of 3 (transient observation).
    body = _block_body(rng, host="y.com", country="SY")
    data.append("y.com", "SY", 403, len(body), body)
    data.append("y.com", "SY", 200, 8_000, None)
    data.append("y.com", "SY", NO_RESPONSE, 0, None, error="timeout")
    return data


@pytest.fixture
def rng():
    return random.Random(3)


class TestCandidatePairs:
    def test_pairs_with_block_page_found(self, rng):
        candidates = find_candidate_pairs(_initial_dataset(rng))
        assert ("x.com", "IR") in candidates
        assert ("y.com", "SY") in candidates
        assert ("x.com", "US") not in candidates

    def test_explicit_only_excludes_akamai(self, rng):
        data = ScanDataset()
        body = _block_body(rng, page_type=blockpages.AKAMAI_BLOCK)
        data.append("z.com", "IR", 403, len(body), body)
        assert find_candidate_pairs(data, explicit_only=True) == {}
        ambiguous = find_candidate_pairs(data, explicit_only=False)
        assert ("z.com", "IR") in ambiguous


class TestBlockRates:
    def test_rates(self, rng):
        rates = block_rates(_initial_dataset(rng))
        assert rates[("x.com", "IR")][:2] == (3, 3)
        assert rates[("y.com", "SY")][:2] == (1, 3)
        assert rates[("x.com", "US")][:2] == (0, 3)

    def test_page_type_recorded(self, rng):
        rates = block_rates(_initial_dataset(rng))
        assert rates[("x.com", "IR")][2] == blockpages.CLOUDFLARE_BLOCK

    def test_noncontiguous_pairs_merged(self, rng):
        data = ScanDataset()
        body = _block_body(rng)
        data.append("x.com", "IR", 403, len(body), body)
        data.append("x.com", "US", 200, 100, None)
        data.append("x.com", "IR", 200, 9_000, None)
        rates = block_rates(data)
        assert rates[("x.com", "IR")][:2] == (1, 2)


class TestConfirmBlocks:
    def test_consistent_pair_confirmed(self, rng):
        initial = _initial_dataset(rng)
        resampled = ScanDataset()
        for _ in range(20):
            body = _block_body(rng)
            resampled.append("x.com", "IR", 403, len(body), body)
        confirmed = confirm_blocks(initial, resampled)
        keys = {(c.domain, c.country) for c in confirmed}
        assert ("x.com", "IR") in keys
        block = next(c for c in confirmed if c.domain == "x.com")
        assert block.agreement == 1.0
        assert block.total_samples == 23
        assert block.provider == "cloudflare"

    def test_transient_pair_rejected(self, rng):
        initial = _initial_dataset(rng)
        resampled = ScanDataset()
        for _ in range(20):
            resampled.append("y.com", "SY", 200, 8_000, None)
        confirmed = confirm_blocks(initial, resampled)
        assert all(c.domain != "y.com" for c in confirmed)

    def test_threshold_boundary(self, rng):
        initial = ScanDataset()
        resampled = ScanDataset()
        # 19 of 23 = 82.6% (pass); 18 of 23 = 78.3% (fail).
        for hits, domain in ((19, "pass.com"), (18, "fail.com")):
            for i in range(3):
                body = _block_body(rng, host=domain)
                initial.append(domain, "IR", 403, len(body), body)
            for i in range(20):
                if i < hits - 3:
                    body = _block_body(rng, host=domain)
                    resampled.append(domain, "IR", 403, len(body), body)
                else:
                    resampled.append(domain, "IR", 200, 9_000, None)
        confirmed = {c.domain for c in confirm_blocks(initial, resampled)}
        assert confirmed == {"pass.com"}

    def test_errors_count_against_agreement(self, rng):
        initial = ScanDataset()
        resampled = ScanDataset()
        for _ in range(3):
            body = _block_body(rng)
            initial.append("e.com", "IR", 403, len(body), body)
        for i in range(20):
            if i < 10:
                body = _block_body(rng)
                resampled.append("e.com", "IR", 403, len(body), body)
            else:
                resampled.append("e.com", "IR", NO_RESPONSE, 0, None,
                                 error="timeout")
        confirmed = confirm_blocks(initial, resampled)
        assert confirmed == []  # 13/23 = 56% < 80%


class TestSamplingCurves:
    def test_draw_block_rates_bounds(self):
        pool = [True] * 90 + [False] * 10
        rates = draw_block_rates(pool, sizes=[1, 5, 20], draws=200, seed=1)
        for size, values in rates.items():
            assert len(values) == 200
            assert all(0.0 <= v <= 1.0 for v in values)

    def test_bigger_samples_concentrate(self):
        pool = [True] * 85 + [False] * 15
        rates = draw_block_rates(pool, sizes=[2, 50], draws=400, seed=2)
        import statistics
        assert (statistics.pstdev(rates[50]) < statistics.pstdev(rates[2]))

    def test_consistency_cdf_combines_pairs(self):
        pools = {("a.com", "IR"): [True] * 95 + [False] * 5,
                 ("b.com", "SY"): [True] * 80 + [False] * 20}
        combined = consistency_cdf(pools, sizes=[20], draws=100, seed=0)
        assert len(combined[20]) == 200

    def test_false_negative_curve_decreases(self):
        pool = [True] * 70 + [False] * 30
        pools = {("a.com", "IR"): pool}
        curve = false_negative_curve(pools, sizes=[1, 3, 10], draws=500, seed=0)
        assert curve[1] > curve[3] > curve[10]
        assert curve[1] == pytest.approx(0.30, abs=0.08)

    def test_fn_zero_for_always_blocked(self):
        pools = {("a.com", "IR"): [True] * 100}
        curve = false_negative_curve(pools, sizes=[1, 3], draws=100)
        assert curve[1] == 0.0
        assert curve[3] == 0.0

    def test_agreement_distribution(self):
        rates = {("a", "IR"): (20, 23), ("b", "SY"): (23, 23), ("c", "X"): (0, 0)}
        values = agreement_distribution(rates)
        assert values == sorted(values)
        assert len(values) == 2
