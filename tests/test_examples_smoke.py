"""Smoke checks for the example scripts.

Full example runs take minutes, so CI-grade checks here are structural:
each example parses, exposes a ``main``, and carries a usage docstring.
(The examples are executed for real by `scripts/` usage and were part of
the release checklist.)
"""

import ast
import pathlib

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
class TestExampleStructure:
    def test_parses(self, path):
        tree = ast.parse(path.read_text())
        assert tree is not None

    def test_has_main(self, path):
        tree = ast.parse(path.read_text())
        functions = {node.name for node in ast.walk(tree)
                     if isinstance(node, ast.FunctionDef)}
        assert "main" in functions

    def test_has_docstring_with_run_line(self, path):
        tree = ast.parse(path.read_text())
        docstring = ast.get_docstring(tree)
        assert docstring
        assert "Run:" in docstring or "Usage" in docstring

    def test_has_entrypoint_guard(self, path):
        assert 'if __name__ == "__main__":' in path.read_text()


def test_at_least_six_examples():
    assert len(EXAMPLES) >= 6
