"""Unit tests for the hot-path primitives: LRUCache and ShardedCounter."""

import threading

import pytest

from repro.util.cache import LRUCache
from repro.util.counters import ShardedCounter


class TestLRUCache:
    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            LRUCache(capacity=0)

    def test_get_put_roundtrip(self):
        cache = LRUCache(capacity=4)
        cache.put("a", 1)
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", -1) == -1
        assert "a" in cache
        assert len(cache) == 1

    def test_eviction_is_bounded_not_total(self):
        cache = LRUCache(capacity=3)
        for key in "abcd":
            cache.put(key, key.upper())
        # Only the single oldest entry leaves; the rest survive.
        assert len(cache) == 3
        assert "a" not in cache
        assert all(k in cache for k in "bcd")

    def test_get_refreshes_recency(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        cache.get("a")
        cache.put("c", 3)
        assert "a" in cache  # refreshed, so "b" was the LRU victim
        assert "b" not in cache

    def test_overwrite_updates_value(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("a", 2)
        assert cache.get("a") == 2
        assert len(cache) == 1


class TestShardedCounter:
    def test_single_thread_counts(self):
        counter = ShardedCounter()
        for _ in range(5):
            counter.increment()
        assert counter.value == 5

    def test_concurrent_increments_all_land(self):
        counter = ShardedCounter()
        per_thread = 2_000

        def worker():
            for _ in range(per_thread):
                counter.increment()

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert counter.value == 8 * per_thread

    def test_add_folds_external_batches(self):
        counter = ShardedCounter()
        counter.increment()
        counter.add(41)
        assert counter.value == 42

    def test_add_rejects_negative(self):
        counter = ShardedCounter()
        with pytest.raises(ValueError):
            counter.add(-1)
