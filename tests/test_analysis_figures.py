"""Tests for figure builders."""

import pytest

from repro.analysis import figures as figs
from repro.analysis.report import render_figure
from repro.datasets.cloudflare_rules import CloudflareRuleDataset


@pytest.fixture(scope="module")
def pools():
    return {
        ("a.com", "IR"): [True] * 92 + [False] * 8,
        ("b.com", "SY"): [True] * 99 + [False] * 1,
        ("c.com", "CU"): [True] * 70 + [False] * 30,
    }


class TestFigure1:
    def test_series_per_size(self, pools):
        figure = figs.figure1(pools, sizes=(3, 20), draws=100)
        assert set(figure.series) == {"samples=3", "samples=20"}
        for points in figure.series.values():
            assert len(points) == 300  # 3 pairs x 100 draws

    def test_cdf_monotone(self, pools):
        figure = figs.figure1(pools, sizes=(5,), draws=50)
        ys = [y for _, y in figure.series["samples=5"]]
        assert ys == sorted(ys)
        assert ys[-1] == pytest.approx(1.0)

    def test_stat_fraction_below_80(self, pools):
        figure = figs.figure1(pools, sizes=(20,), draws=200)
        stat = figs.figure1_stat(figure, size=20)
        assert 0.0 <= stat <= 1.0
        # c.com at 70% block rate should keep this well above zero.
        assert stat > 0.05

    def test_stat_missing_size(self, pools):
        figure = figs.figure1(pools, sizes=(3,), draws=10)
        assert figs.figure1_stat(figure, size=99) == 0.0


class TestFigure2:
    def test_two_series(self, tiny_top10k):
        figure = figs.figure2(tiny_top10k.initial,
                              tiny_top10k.top_blocking_countries[:20],
                              tiny_top10k.registry)
        assert "all pages" in figure.series
        assert "blocked pages" in figure.series
        assert figure.series["all pages"]

    def test_blocked_pages_shorter(self, tiny_top10k):
        figure = figs.figure2(tiny_top10k.initial,
                              tiny_top10k.top_blocking_countries[:20],
                              tiny_top10k.registry)
        blocked = [x for x, _ in figure.series["blocked pages"]]
        everything = [x for x, _ in figure.series["all pages"]]
        if not blocked:
            pytest.skip("no blocked samples in tiny world")
        import statistics
        assert statistics.median(blocked) > statistics.median(everything)


class TestFigure3:
    def test_monotone_decreasing(self, pools):
        figure = figs.figure3(pools, sizes=(1, 3, 10), draws=300)
        points = dict(figure.series["false negatives"])
        assert points[1.0] >= points[3.0] >= points[10.0]

    def test_range(self, pools):
        figure = figs.figure3(pools, sizes=(1, 2), draws=100)
        for _, y in figure.series["false negatives"]:
            assert 0.0 <= y <= 1.0


class TestFigure4:
    def test_agreement_cdf(self, tiny_top10k):
        figure = figs.figure4(tiny_top10k)
        points = figure.series["agreement"]
        assert points
        xs = [x for x, _ in points]
        assert all(0.0 <= x <= 1.0 for x in xs)
        assert xs == sorted(xs)

    def test_confirmed_only_at_least_80(self, tiny_top10k):
        figure = figs.figure4(tiny_top10k)
        for x, _ in figure.series["confirmed-only"]:
            assert x >= 0.80


class TestFigure5:
    def test_series_per_country(self):
        dataset = CloudflareRuleDataset.generate(n_zones=30_000, seed=4)
        figure = figs.figure5(dataset)
        assert set(figure.series) == {"KP", "IR", "SY", "SD", "CU"}
        for points in figure.series.values():
            ys = [y for _, y in points]
            assert ys == sorted(ys)

    def test_render_figure(self):
        dataset = CloudflareRuleDataset.generate(n_zones=5_000, seed=4)
        text = render_figure(figs.figure5(dataset))
        assert "Figure 5" in text
        assert "KP" in text
