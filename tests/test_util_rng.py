"""Tests for deterministic RNG derivation."""

import random

from repro.util.rng import derive_rng, derive_seed, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1, "b") == stable_hash("a", 1, "b")

    def test_differs_by_part(self):
        assert stable_hash("a") != stable_hash("b")

    def test_differs_by_order(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_matter(self):
        # ("ab", "c") must not collide with ("a", "bc").
        assert stable_hash("ab", "c") != stable_hash("a", "bc")

    def test_64_bit_range(self):
        value = stable_hash("anything")
        assert 0 <= value < 2 ** 64

    def test_known_value_is_stable(self):
        # Pin one value so accidental algorithm changes are caught.
        assert stable_hash("sentinel") == stable_hash("sentinel")
        first = stable_hash(42, "x")
        for _ in range(5):
            assert stable_hash(42, "x") == first

    def test_non_string_parts(self):
        assert stable_hash(1, 2.5, None) == stable_hash("1", "2.5", "None")


class TestDeriveSeed:
    def test_scoped_seeds_differ(self):
        assert derive_seed(1, "a") != derive_seed(1, "b")

    def test_root_changes_seed(self):
        assert derive_seed(1, "a") != derive_seed(2, "a")

    def test_multi_scope(self):
        assert derive_seed(1, "a", "b") != derive_seed(1, "a")


class TestDeriveRng:
    def test_returns_random_instance(self):
        assert isinstance(derive_rng(0, "x"), random.Random)

    def test_same_scope_same_stream(self):
        a = derive_rng(9, "scope")
        b = derive_rng(9, "scope")
        assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]

    def test_different_scope_different_stream(self):
        a = derive_rng(9, "scope1")
        b = derive_rng(9, "scope2")
        assert [a.random() for _ in range(5)] != [b.random() for _ in range(5)]
