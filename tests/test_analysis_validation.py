"""Tests for the shape-validation checks."""

from repro.analysis.validation import (
    CheckResult,
    render_validation,
    validate_findings,
)


def _good_findings():
    return {
        "top10k.top_countries": ["IR", "SY", "SD", "CU"],
        "top10k.appengine_rate": 0.40,
        "top10k.cloudflare_rate": 0.03,
        "top10k.cloudfront_rate": 0.015,
        "top10k.length_recall": 0.6,
        "top10k.gt_precision": 1.0,
        "top10k.median_blocked_per_country": 3,
        "fig1.frac_below_80_at_20": 0.04,
        "fig3.fn_at_3": 0.02,
        "top1m.top_countries": ["IR", "SD", "SY", "CU"],
        "top1m.appengine_rate": 0.17,
        "top1m.cloudflare_rate": 0.026,
        "top1m.cloudfront_rate": 0.031,
        "top1m.rate_any": 0.044,
        "table9.baseline_enterprise": 0.37,
        "table9.baseline_free": 0.017,
        "ooni.domain_fraction": 0.09,
        "ooni.control_403": 36_000,
        "ooni.local_blocked_control_ok": 14_000,
        "vps.iran_403": 707,
        "vps.us_403": 69,
        "vps.fp_rate": 0.27,
    }


class TestValidateFindings:
    def test_paper_values_all_pass(self):
        results = validate_findings(_good_findings())
        assert results
        assert all(r.passed for r in results), [
            r for r in results if not r.passed]

    def test_wrong_country_ordering_fails(self):
        findings = _good_findings()
        findings["top10k.top_countries"] = ["US", "DE", "FR", "GB"]
        results = validate_findings(findings)
        failed = [r for r in results if not r.passed]
        assert any("sanctioned" in r.name for r in failed)

    def test_inverted_provider_rates_fail(self):
        findings = _good_findings()
        findings["top10k.appengine_rate"] = 0.001
        results = validate_findings(findings)
        assert any(not r.passed and "AppEngine" in r.name for r in results)

    def test_missing_keys_skip_checks(self):
        results = validate_findings({"top10k.gt_precision": 1.0})
        assert len(results) == 1

    def test_missing_companion_key_fails_not_raises(self):
        # appengine_rate present but cloudflare_rate missing.
        results = validate_findings({"top10k.appengine_rate": 0.4})
        assert len(results) == 1
        assert not results[0].passed
        assert "missing data" in results[0].detail

    def test_zero_free_baseline_handled(self):
        findings = _good_findings()
        findings["table9.baseline_free"] = 0.0
        results = validate_findings(findings)
        check = next(r for r in results if "enterprise >> free" in r.name)
        assert check.passed  # ratio against epsilon is huge


class TestRendering:
    def test_render_counts(self):
        results = [CheckResult("a", True, "x"), CheckResult("b", False, "y")]
        text = render_validation(results)
        assert "[PASS] a" in text
        assert "[FAIL] b" in text
        assert "1/2 shape checks passed" in text
