"""End-to-end determinism: identical seeds yield identical studies."""

import pytest

from repro.core.pipeline import run_top10k_study
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig


class TestWorldDeterminism:
    def test_fetch_sequence_reproducible(self):
        from repro.httpsim.messages import Request
        from repro.httpsim.url import parse_url
        from repro.httpsim.useragent import browser_headers
        from repro.netsim.errors import FetchError

        def run_sequence(world):
            outcomes = []
            ip = world.residential_address("IR")
            for domain in world.population.top(80):
                request = Request(url=parse_url(domain.url),
                                  headers=browser_headers())
                try:
                    response = world.fetch(request, ip)
                    outcomes.append((domain.name, response.status,
                                     len(response.body)))
                except FetchError as exc:
                    outcomes.append((domain.name, exc.kind, 0))
            return outcomes

        a = run_sequence(World(WorldConfig.nano()))
        b = run_sequence(World(WorldConfig.nano()))
        assert a == b

    def test_seed_changes_outcomes(self):
        a = World(WorldConfig.nano(seed=1))
        b = World(WorldConfig.nano(seed=2))
        assert ([d.name for d in a.population]
                != [d.name for d in b.population])


class TestStudyDeterminism:
    def test_top10k_reproducible(self):
        def run():
            world = World(WorldConfig.nano())
            return run_top10k_study(world, LuminatiClient(world))

        a = run()
        b = run()
        assert ([(c.domain, c.country, c.page_type) for c in a.confirmed]
                == [(c.domain, c.country, c.page_type) for c in b.confirmed])
        assert len(a.initial) == len(b.initial)
        assert a.top_blocking_countries == b.top_blocking_countries
        assert [o.index for o in a.outliers] == [o.index for o in b.outliers]

    def test_scan_reproducible(self):
        def scan():
            world = World(WorldConfig.nano())
            scanner = Lumscan(LuminatiClient(world), seed=5)
            urls = [d.url for d in world.population.top(30)]
            return scanner.scan(urls, ["US", "IR", "CN"], samples=2)

        a = scan()
        b = scan()
        assert len(a) == len(b)
        for i in range(len(a)):
            assert a.row(i) == b.row(i)
