"""Tests for the OONI corpus simulation and §7.1 analysis."""

import pytest

from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.ooni import (
    OONICorpus,
    OONIMeasurement,
    control_blocking_stats,
    find_geoblock_confounding,
)


@pytest.fixture(scope="module")
def corpus(tiny_world):
    citizenlab = CitizenLabList(tiny_world.population, tiny_world.taxonomy,
                                seed=tiny_world.config.seed)
    return OONICorpus.generate(tiny_world, citizenlab.domains(),
                               countries=["US", "IR", "CN", "RU", "DE", "SY"],
                               measurements_per_pair=1,
                               seed=tiny_world.config.seed), citizenlab


class TestMeasurement:
    def test_local_blocked_conditions(self):
        blocked = OONIMeasurement("a.com", "IR", 403, "<html>x</html>", 200, False)
        assert blocked.local_blocked
        ok = OONIMeasurement("a.com", "US", 200, "<html>x</html>", 200, False)
        assert not ok.local_blocked
        failed = OONIMeasurement("a.com", "US", 0, None, 200, False)
        assert failed.local_blocked

    def test_control_blocked(self):
        assert OONIMeasurement("a.com", "US", 200, "x", 403, True).control_blocked
        assert OONIMeasurement("a.com", "US", 200, "x", 0, True).control_blocked
        assert not OONIMeasurement("a.com", "US", 200, "x", 200, True).control_blocked


class TestCorpusGeneration:
    def test_size(self, corpus, tiny_world):
        data, citizenlab = corpus
        # <= list-size * countries (unknown domains skipped).
        assert 0 < len(data) <= len(citizenlab) * 6

    def test_control_bodies_never_saved(self, corpus):
        data, _ = corpus
        # The saved reports only keep control status/headers (§7.1); the
        # measurement type has no control-body field at all.
        assert not hasattr(next(iter(data)), "control_body")

    def test_some_tor_controls_blocked(self, corpus):
        data, _ = corpus
        blocked_controls = [m for m in data
                            if m.control_over_tor and m.control_status == 403]
        assert blocked_controls

    def test_deterministic(self, tiny_world):
        domains = [d.name for d in tiny_world.population][:20]
        a = OONICorpus.generate(tiny_world, domains, countries=["US"],
                                seed=3, measurements_per_pair=1)
        b = OONICorpus.generate(tiny_world, domains, countries=["US"],
                                seed=3, measurements_per_pair=1)
        assert [(m.domain, m.local_status) for m in a] == \
            [(m.domain, m.local_status) for m in b]


class TestConfoundingAnalysis:
    def test_geoblock_pages_found(self, corpus):
        data, citizenlab = corpus
        findings = find_geoblock_confounding(data, len(citizenlab))
        # The synthetic list contains benign geoblockers, so the corpus
        # must contain explicit geoblock observations.
        assert findings.geoblock_measurements >= 0
        assert 0.0 <= findings.domain_fraction <= 1.0
        assert len(findings.geoblock_domains) <= findings.test_list_size

    def test_censor_pages_not_counted(self, tiny_world):
        censored = [d.name for d in tiny_world.population
                    if "IR" in d.censored_in][:3]
        if not censored:
            pytest.skip("no IR-censored domains")
        corpus = OONICorpus.generate(tiny_world, censored, countries=["IR"],
                                     measurements_per_pair=2, seed=0)
        findings = find_geoblock_confounding(corpus, len(censored))
        assert findings.geoblock_measurements == 0

    def test_control_blocking_stats(self, corpus, tiny_world):
        data, _ = corpus
        from repro.core.identify import identify_by_ns
        ns = identify_by_ns(tiny_world.dns, [m.domain for m in data])
        cdn = ns["cloudflare"] | ns["akamai"]
        stats = control_blocking_stats(data, cdn)
        assert stats.control_403 >= 0
        assert stats.local_blocked_control_ok >= 0

    def test_stats_ignore_non_cdn(self, corpus):
        data, _ = corpus
        stats = control_blocking_stats(data, set())
        assert stats.control_403 == 0
        assert stats.local_blocked_control_ok == 0
