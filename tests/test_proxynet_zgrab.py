"""Tests for the ZGrab validation protocol (§3.1)."""

import pytest

from repro.proxynet.vps import VPSFleet
from repro.proxynet.zgrab import (
    ZGrabComparison,
    false_positive_survey,
    validate_zgrab,
)


@pytest.fixture(scope="module")
def us_vps(tiny_world):
    return VPSFleet(tiny_world).get("US")


class TestComparison:
    def test_agreement(self):
        assert ZGrabComparison("a.com", 200, 200).agrees
        assert not ZGrabComparison("a.com", 403, 200).agrees

    def test_false_positive_definition(self):
        assert ZGrabComparison("a.com", 403, 200).zgrab_false_positive
        assert not ZGrabComparison("a.com", 403, 403).zgrab_false_positive
        assert not ZGrabComparison("a.com", 200, 403).zgrab_false_positive
        assert not ZGrabComparison("a.com", None, 200).zgrab_false_positive


class TestValidateZgrab:
    def _clean_domains(self, world, n):
        return [d.name for d in world.population
                if not d.dead and not d.redirect_loop
                and d.name not in world.policies and not d.censored_in
                and not d.bot_protection][:n]

    def test_clean_domains_agree(self, tiny_world, us_vps):
        domains = self._clean_domains(tiny_world, 20)
        validation = validate_zgrab(us_vps, domains, sample_size=20)
        assert validation.agreement_rate > 0.9
        assert not validation.false_positives

    def test_protected_domains_disagree(self, tiny_world, us_vps):
        protected = [d.name for d in tiny_world.population
                     if d.bot_protection and not d.dead
                     and not d.redirect_loop
                     and d.name not in tiny_world.policies
                     and not d.censored_in][:10]
        if len(protected) < 3:
            pytest.skip("too few protected domains")
        validation = validate_zgrab(us_vps, protected,
                                    sample_size=len(protected))
        assert validation.false_positives  # the §3.1 phenomenon

    def test_sampling_deterministic(self, tiny_world, us_vps):
        domains = self._clean_domains(tiny_world, 40)
        a = validate_zgrab(us_vps, domains, sample_size=10, seed=3)
        b = validate_zgrab(us_vps, domains, sample_size=10, seed=3)
        assert ([c.domain for c in a.comparisons]
                == [c.domain for c in b.comparisons])

    def test_empty_validation(self, us_vps):
        validation = validate_zgrab(us_vps, [], sample_size=10)
        assert validation.agreement_rate == 1.0


class TestFalsePositiveSurvey:
    def test_akamai_fp_rate_positive(self, tiny_world, us_vps):
        protected = [d.name for d in tiny_world.population
                     if d.provider == "akamai" and d.bot_protection
                     and not d.dead and not d.redirect_loop
                     and d.name not in tiny_world.policies
                     and not d.censored_in]
        clean = [d.name for d in tiny_world.population
                 if d.provider == "akamai" and not d.bot_protection
                 and not d.dead and not d.redirect_loop
                 and d.name not in tiny_world.policies
                 and not d.censored_in][:10]
        if not protected:
            pytest.skip("no protected akamai domains")
        rates = false_positive_survey(
            us_vps, {"akamai-protected": protected, "akamai-clean": clean})
        assert rates["akamai-protected"] > 0.5
        assert rates["akamai-clean"] <= rates["akamai-protected"]
