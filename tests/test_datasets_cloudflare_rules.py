"""Tests for the Cloudflare firewall-rule dataset (§6)."""

import datetime

import pytest

from repro.datasets.cloudflare_rules import (
    BASELINE_TARGETS,
    CloudflareRuleDataset,
    SANCTIONS_BUNDLE,
    TABLE9_TARGETS,
    TIERS,
)


@pytest.fixture(scope="module")
def dataset():
    return CloudflareRuleDataset.generate(n_zones=60_000, seed=5)


class TestGeneration:
    def test_deterministic(self):
        a = CloudflareRuleDataset.generate(n_zones=2_000, seed=1)
        b = CloudflareRuleDataset.generate(n_zones=2_000, seed=1)
        assert len(a) == len(b)
        assert [(r.zone_id, r.country) for r in a] == \
            [(r.zone_id, r.country) for r in b]

    def test_zone_counts_sum(self, dataset):
        assert sum(dataset.zones(t) for t in TIERS) == 60_000

    def test_tier_mix(self, dataset):
        assert dataset.zones("free") > dataset.zones("enterprise")

    def test_rule_fields_valid(self, dataset):
        for rule in list(dataset)[:500]:
            assert rule.tier in TIERS
            assert rule.action in ("block", "challenge", "js_challenge")
            assert rule.activated <= dataset.snapshot_date


class TestCalibration:
    def test_baselines_close_to_table9(self, dataset):
        baselines = dataset.baseline_rates()
        for tier, target in BASELINE_TARGETS.items():
            assert baselines[tier] == pytest.approx(target, rel=0.25), tier

    def test_enterprise_blocks_sanctions_most(self, dataset):
        rates = dataset.country_rates()
        # KP and IR lead the enterprise column (Table 9).
        enterprise = {c: rates[c]["enterprise"] for c in rates}
        top2 = sorted(enterprise, key=enterprise.get, reverse=True)[:2]
        assert set(top2) <= {"KP", "IR", "SY", "SD"}

    def test_free_tier_blocks_china_russia_most(self, dataset):
        rates = dataset.country_rates()
        free = {c: rates[c]["free"] for c in rates}
        top2 = sorted(free, key=free.get, reverse=True)[:2]
        assert set(top2) <= {"CN", "RU", "UA"}

    def test_country_rates_close_to_targets(self, dataset):
        rates = dataset.country_rates()
        for country in ("RU", "KP", "IR", "CN"):
            for tier_index, tier in enumerate(TIERS, start=1):
                target = TABLE9_TARGETS[country][tier_index] / 100.0
                measured = rates[country][tier]
                assert measured == pytest.approx(target, rel=0.5, abs=0.002), (
                    country, tier)


class TestTemporalStructure:
    def test_non_enterprise_blocks_only_in_regression(self, dataset):
        start = datetime.date(2018, 4, 1)
        for rule in dataset:
            if rule.tier != "enterprise" and rule.action == "block":
                assert rule.activated >= start

    def test_enterprise_rules_span_years(self, dataset):
        dates = [r.activated for r in dataset if r.tier == "enterprise"]
        assert min(dates).year <= 2016
        assert max(dates).year == 2018

    def test_activation_series_cumulative(self, dataset):
        series = dataset.activation_series(["IR", "KP"])
        for country, points in series.items():
            counts = [c for _, c in points]
            assert counts == sorted(counts)
            dates = [d for d, _ in points]
            assert dates == sorted(dates)

    def test_sanctions_bundle_correlated(self, dataset):
        # Zones blocking IR usually also block the rest of the bundle
        # within days (Figure 5's co-moving curves).
        by_zone = {}
        for rule in dataset:
            if rule.tier == "enterprise" and rule.country in SANCTIONS_BUNDLE:
                by_zone.setdefault(rule.zone_id, []).append(rule)
        multi = [rules for rules in by_zone.values() if len(rules) >= 2]
        assert multi
        close = 0
        for rules in multi:
            dates = [r.activated for r in rules]
            if (max(dates) - min(dates)).days <= 6:
                close += 1
        assert close / len(multi) > 0.9

    def test_rules_activated_after(self, dataset):
        recent = dataset.rules_activated_after(datetime.date(2018, 4, 1))
        assert 0 < recent <= len(dataset)
