"""Tests for the VPS fleet and redirect-following transport."""

import pytest

from repro.httpsim.messages import Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers
from repro.netsim.errors import TooManyRedirects
from repro.proxynet.transport import fetch_with_redirects
from repro.proxynet.vps import VPSFleet


@pytest.fixture(scope="module")
def fleet(nano_world):
    return VPSFleet(nano_world)


class TestFleet:
    def test_fleet_covers_registry_vps_countries(self, fleet, nano_world):
        expected = [c.code for c in nano_world.registry.vps_countries()]
        assert fleet.countries() == expected

    def test_get(self, fleet):
        client = fleet.get("US")
        assert client.country == "US"

    def test_get_missing(self, fleet):
        with pytest.raises(KeyError):
            fleet.get("ZZ")

    def test_verify_locations_mostly_match(self, fleet):
        mismatches = [claimed for claimed, seen in fleet.verify_locations().items()
                      if claimed != seen]
        # GeoIP error can mislocate the odd VPS; most must verify.
        assert len(mismatches) <= 1

    def test_clients(self, fleet):
        assert len(fleet.clients()) == len(fleet)


class TestVPSFetch:
    def _clean_domain(self, world):
        return next(d for d in world.population
                    if not d.dead and not d.redirect_loop
                    and d.name not in world.policies
                    and not d.censored_in and not d.bot_protection)

    def test_browser_fetch_succeeds(self, fleet, nano_world):
        domain = self._clean_domain(nano_world)
        result = fleet.get("US").fetch_browser(f"http://{domain.name}/")
        assert result.ok
        assert result.response.status == 200

    def test_zgrab_on_protected_domain(self, fleet, nano_world):
        domain = next((d for d in nano_world.population
                       if d.bot_protection and not d.dead and not d.redirect_loop
                       and d.name not in nano_world.policies
                       and not d.censored_in), None)
        if domain is None:
            pytest.skip("no protected domain")
        hits = sum(
            1 for _ in range(8)
            if (r := fleet.get("US").fetch_zgrab(f"http://{domain.name}/")).ok
            and r.response.status == 403)
        assert hits >= 3

    def test_all_responses_includes_chain(self, fleet, nano_world):
        domain = next(d for d in nano_world.population
                      if d.https_redirect and not d.dead and not d.redirect_loop
                      and d.name not in nano_world.policies
                      and not d.censored_in and not d.bot_protection)
        result = fleet.get("US").fetch_browser(f"http://{domain.name}/")
        assert result.ok
        assert len(result.all_responses) == len(result.chain) + 1


class TestTransport:
    def test_redirect_limit(self, nano_world):
        domain = next(d for d in nano_world.population if d.redirect_loop)
        request = Request(url=parse_url(f"http://{domain.name}/"),
                          headers=browser_headers())
        with pytest.raises(TooManyRedirects):
            fetch_with_redirects(nano_world, request,
                                 nano_world.vps_address("US"), max_redirects=5)

    def test_follows_full_chain(self, nano_world):
        domain = next(d for d in nano_world.population
                      if d.https_redirect and d.www_redirect
                      and not d.dead and not d.redirect_loop
                      and d.name not in nano_world.policies
                      and not d.censored_in and not d.bot_protection)
        request = Request(url=parse_url(f"http://{domain.name}/"),
                          headers=browser_headers())
        result = fetch_with_redirects(nano_world, request,
                                      nano_world.vps_address("US"))
        assert result.response.status == 200
        assert len(result.chain) == 2
        assert result.response.url.host == f"www.{domain.name}"
        assert result.response.url.scheme == "https"
