"""Integration tests: the full study pipelines over the tiny world."""

import pytest

from repro.core.metrics import score_confirmed_blocks
from repro.core.pipeline import (
    StudyConfig,
    build_safe_list,
    run_top1m_study,
    run_vps_exploration,
)
from repro.datasets.alexa import AlexaList
from repro.websim import blockpages


class TestTop10KStudy:
    def test_safe_list_smaller_than_population(self, tiny_top10k, tiny_world):
        assert 0 < len(tiny_top10k.safe_domains) < len(tiny_world.population)

    def test_initial_dataset_shape(self, tiny_top10k, tiny_world):
        expected = (len(tiny_top10k.safe_domains)
                    * len(tiny_top10k.countries) * 3)
        assert len(tiny_top10k.initial) == expected

    def test_confirmed_blocks_exist(self, tiny_top10k):
        assert tiny_top10k.confirmed

    def test_confirmed_pages_are_explicit(self, tiny_top10k):
        for block in tiny_top10k.confirmed:
            assert block.page_type in blockpages.EXPLICIT_GEOBLOCK_TYPES
            assert block.agreement >= 0.80

    def test_sanctioned_countries_dominate(self, tiny_top10k):
        top4 = [c for c, _ in tiny_top10k.instances_by_country().most_common(4)]
        assert len(set(top4) & {"IR", "SY", "SD", "CU"}) >= 3

    def test_north_korea_never_measured(self, tiny_top10k):
        assert "KP" not in tiny_top10k.countries
        assert all(c.country != "KP" for c in tiny_top10k.confirmed)

    def test_high_precision_against_ground_truth(self, tiny_top10k, tiny_world):
        score = score_confirmed_blocks(tiny_world, tiny_top10k.confirmed,
                                       tiny_top10k.safe_domains,
                                       tiny_top10k.countries)
        assert score.precision >= 0.95
        assert score.recall >= 0.75

    def test_discovery_found_explicit_pages(self, tiny_top10k):
        labelled = {c.page_type for c in tiny_top10k.clusters if c.page_type}
        assert labelled & set(blockpages.EXPLICIT_GEOBLOCK_TYPES)

    def test_transient_domain_not_confirmed(self, tiny_top10k, tiny_world):
        # The makro.co.za-style domain stops blocking before confirmation.
        transient = next((n for n, p in tiny_world.policies.items()
                          if p.expires_epoch == 0), None)
        if transient is None:
            pytest.skip("no transient policy")
        assert transient not in tiny_top10k.confirmed_domains

    def test_other_page_counts_nonempty(self, tiny_top10k):
        # Captchas / ambiguous pages were observed (the 200,417 of §4.2.2).
        assert sum(tiny_top10k.other_page_counts.values()) > 0

    def test_brand_blocks_iran_syria_only(self, tiny_top10k, tiny_world):
        brand_blocks = [c for c in tiny_top10k.confirmed if c.provider == "brand"]
        if not brand_blocks:
            pytest.skip("brand not confirmed in tiny world")
        # Reachable brand-blocked countries are IR and SY (KP unreachable).
        assert {c.country for c in brand_blocks} <= {"IR", "SY"}

    def test_error_statistics_within_paper_range(self, tiny_top10k):
        rates = tiny_top10k.initial.response_rate_by_country()
        # Nearly every country should have >= 1 response for most domains.
        assert all(rate > 0.75 for rate in rates.values())


class TestBuildSafeList:
    def test_removes_risky_and_citizenlab(self, tiny_world):
        alexa = AlexaList(tiny_world.population)
        safe = build_safe_list(tiny_world, alexa.top10k())
        from repro.datasets.citizenlab import CitizenLabList
        citizenlab = CitizenLabList(tiny_world.population, tiny_world.taxonomy,
                                    seed=tiny_world.config.seed)
        assert all(d not in citizenlab for d in safe)


@pytest.fixture(scope="session")
def tiny_top1m(tiny_world, tiny_top10k):
    return run_top1m_study(tiny_world, registry=tiny_top10k.registry)


class TestTop1MStudy:
    def test_population_identified(self, tiny_top1m, tiny_world):
        assert tiny_top1m.population.of("cloudflare")
        assert tiny_top1m.population.of("akamai")

    def test_sample_within_safe_customers(self, tiny_top1m):
        assert set(tiny_top1m.sampled_domains) <= set(tiny_top1m.safe_customers)

    def test_confirmed_providers_explicit(self, tiny_top1m):
        for block in tiny_top1m.confirmed:
            assert block.provider in ("cloudflare", "cloudfront", "appengine",
                                      "baidu", "brand")

    def test_provider_rates_consistent(self, tiny_top1m):
        for provider, (blocked, tested) in tiny_top1m.provider_rates().items():
            assert 0 <= blocked <= tested or tested == 0

    def test_appengine_blocks_only_sanctions(self, tiny_top1m):
        appengine = [c for c in tiny_top1m.confirmed
                     if c.provider == "appengine"]
        if not appengine:
            pytest.skip("no appengine blocks observed")
        assert {c.country for c in appengine} <= {"IR", "SY", "SD", "CU"}

    def test_nonexplicit_confirmed_subset_of_flagged(self, tiny_top1m):
        flagged = {d for domains in tiny_top1m.nonexplicit_flagged.values()
                   for d in domains}
        for domains in tiny_top1m.confirmed_nonexplicit().values():
            assert set(domains) <= flagged

    def test_consistency_records_have_rates(self, tiny_top1m):
        for record in tiny_top1m.consistency.values():
            assert 0 < record.countries_tested
            for rate in record.country_rates.values():
                assert 0.0 <= rate <= 1.0


class TestVPSExploration:
    @pytest.fixture(scope="class")
    def vps_result(self):
        # Fresh world: fetch noise is a world-level stream, so results
        # depend on how much traffic the world has already served.
        from repro.websim.world import World, WorldConfig
        return run_vps_exploration(World(WorldConfig.tiny()))

    def test_iran_sees_more_blockpage_403s_than_us(self, vps_result):
        # The paper's 707-vs-69 gap is driven by geoblocking; raw 403
        # counts at tiny scale are dominated by symmetric bot-detection
        # noise, so the comparison keys on *classified block pages*.
        assert vps_result.iran_blockpage_count >= vps_result.us_blockpage_count
        assert vps_result.iran_blockpage_count > 0

    def test_flagged_partition(self, vps_result):
        assert (len(vps_result.genuine_pairs)
                + len(vps_result.false_positive_pairs)
                == len(vps_result.flagged_pairs))

    def test_fp_rate_bounds(self, vps_result):
        assert 0.0 <= vps_result.false_positive_rate <= 1.0

    def test_genuine_domains_unique(self, vps_result):
        domains = vps_result.genuine_domains
        assert len(domains) == len(set(domains))

    def test_max_domains_limit(self):
        from repro.websim.world import World, WorldConfig
        result = run_vps_exploration(World(WorldConfig.tiny()), max_domains=5)
        assert len(result.cloudflare_domains) <= 5
        assert len(result.akamai_domains) <= 5
