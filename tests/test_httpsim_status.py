"""Tests for status codes and user-agent profiles."""

from repro.httpsim.messages import Headers
from repro.httpsim.status import is_redirect, reason_phrase
from repro.httpsim.useragent import (
    CURL_UA,
    FIREFOX_MACOS_UA,
    browser_headers,
    crawler_headers,
    looks_like_browser,
)


class TestStatus:
    def test_common_reasons(self):
        assert reason_phrase(200) == "OK"
        assert reason_phrase(403) == "Forbidden"
        assert reason_phrase(404) == "Not Found"

    def test_451_legal_reasons(self):
        assert reason_phrase(451) == "Unavailable For Legal Reasons"

    def test_unknown_code(self):
        assert reason_phrase(299) == "Unknown"

    def test_redirect_codes(self):
        for code in (301, 302, 307, 308):
            assert is_redirect(code)

    def test_non_redirect_codes(self):
        for code in (200, 403, 404, 500):
            assert not is_redirect(code)


class TestUserAgentProfiles:
    def test_browser_headers_have_accept(self):
        headers = browser_headers()
        assert "Accept" in headers
        assert "Accept-Language" in headers
        assert "Firefox" in headers.get("User-Agent")

    def test_crawler_headers_only_ua(self):
        headers = crawler_headers()
        assert headers.get("User-Agent") == FIREFOX_MACOS_UA
        assert "Accept" not in headers
        assert len(headers) == 1

    def test_browser_profile_detected(self):
        assert looks_like_browser(browser_headers())

    def test_zgrab_profile_rejected(self):
        # The §3.1 lesson: UA alone does not look like a browser.
        assert not looks_like_browser(crawler_headers())

    def test_curl_rejected(self):
        assert not looks_like_browser(Headers([("User-Agent", CURL_UA)]))

    def test_empty_headers_rejected(self):
        assert not looks_like_browser(Headers())

    def test_custom_ua_in_browser_profile(self):
        headers = browser_headers(user_agent="Mozilla/5.0 TestBrowser")
        assert looks_like_browser(headers)
