"""Lifetime safety of mmap-backed datasets and checkpoint determinism.

Mapped datasets hand out zero-copy numpy views over a file mapping, so
the dangerous states are all about *who outlives whom*: a view kept
after the dataset closes, a store invalidating (unlinking) a segment a
reader still has mapped, a mapped dataset crossing a pickle boundary.
These tests pin the contract: views stay readable, ``close()`` reports
honestly whether the mapping was released, and POSIX unlink semantics
keep open mappings valid.  The last class re-runs the LSHD checkpoint
writer under different ``PYTHONHASHSEED`` values and asserts
byte-identical segments — the codec equivalent of the repro.lint
iteration-order rules.
"""

from __future__ import annotations

import os
import pickle
import subprocess
import sys

import pytest

from repro.lumscan.records import ScanDataset
from repro.lumscan.serialize import dump_dataset_lshd, load_dataset
from repro.run.artifacts import ArtifactStore
from repro.run.stage import ArtifactSpec, KIND_DATASET, Stage


def _dataset() -> ScanDataset:
    data = ScanDataset()
    data.append("a.com", "US", 200, 9_000, None)
    data.append("a.com", "IR", 403, 480, "<html>block</html>")
    data.append("b.com", "SY", -1, 0, None, error="timeout")
    data.append("c.com", "US", 403, 50, "fw", interfered=True)
    return data


def _mapped(tmp_path, name="scan.lshd") -> ScanDataset:
    path = tmp_path / name
    dump_dataset_lshd(_dataset(), path)
    return load_dataset(path)


class TestCloseSemantics:
    def test_clean_close_releases_mapping(self, tmp_path):
        data = _mapped(tmp_path)
        assert data.is_mapped
        assert data.close() is True
        assert len(data) == 0

    def test_closed_dataset_rejects_reads_and_writes(self, tmp_path):
        data = _mapped(tmp_path)
        data.close()
        with pytest.raises(ValueError):
            data.row(0)
        with pytest.raises(ValueError):
            data.append("d.com", "DE", 200, 1, None)

    def test_view_outlives_close(self, tmp_path):
        # A column view exported before close() stays readable: the
        # mapping cannot be released while the view pins it, and close()
        # reports that by returning False.
        data = _mapped(tmp_path)
        statuses = data.export_columns().statuses
        assert data.close() is False
        assert [int(s) for s in statuses] == [200, 403, -1, 403]
        del statuses
        # With the last view gone the dataset is already detached; a
        # second close is a no-op on the dataset side.

    def test_double_close_is_idempotent(self, tmp_path):
        data = _mapped(tmp_path)
        assert data.close() is True
        assert data.close() is True

    def test_append_detaches_from_mapping(self, tmp_path):
        # Growing a mapped dataset must copy into ordinary buffers, not
        # write through to the file.
        path = tmp_path / "scan.lshd"
        dump_dataset_lshd(_dataset(), path)
        before = path.read_bytes()
        data = load_dataset(path)
        data.append("d.com", "DE", 200, 1, None)
        assert len(data) == 5
        assert path.read_bytes() == before
        data.close()

    def test_pickle_produces_plain_copy(self, tmp_path):
        data = _mapped(tmp_path)
        clone = pickle.loads(pickle.dumps(data))
        assert not clone.is_mapped
        data.close()
        assert clone.row(1) == _dataset().row(1)


_STAGE = Stage("scan", (ArtifactSpec("initial", KIND_DATASET),),
               lambda ctx: {"initial": _dataset()})


class TestInvalidateWhileMapped:
    def test_unlinked_segment_stays_readable(self, tmp_path):
        # POSIX keeps the mapped pages alive after unlink, so a reader
        # holding a checkpoint survives the store removing it.
        store = ArtifactStore(str(tmp_path), "study", {"seed": 1}, {"n": 1})
        store.save_stage(_STAGE, {"initial": _dataset()})
        reader = store.load_stage(_STAGE)["initial"]
        assert reader.is_mapped

        store.invalidate([_STAGE], remove_artifacts=True)
        assert not (tmp_path / "study" / "scan.initial.lshd").exists()
        assert [reader.row(i) for i in range(4)] \
            == [_dataset().row(i) for i in range(4)]
        assert reader.close() is True

    def test_unlinked_manifest_and_segments_stay_readable(self, tmp_path):
        # The lshm variant of the contract above: invalidating a
        # manifest-backed checkpoint removes the manifest *and* every
        # segment it references, yet a reader holding the mapped
        # logical dataset keeps reading all of them.
        store = ArtifactStore(str(tmp_path), "study", {"seed": 1}, {"n": 1},
                              dataset_format="lshm")
        store.save_stage(_STAGE, {"initial": _dataset()})
        reader = store.load_stage(_STAGE)["initial"]
        assert reader.is_mapped

        study_dir = tmp_path / "study"
        segments = [p for p in os.listdir(study_dir) if p.endswith(".lshd")]
        assert segments

        store.invalidate([_STAGE], remove_artifacts=True)
        assert not (study_dir / "scan.initial.lshm").exists()
        for segment in segments:
            assert not (study_dir / segment).exists()
        assert [reader.row(i) for i in range(4)] \
            == [_dataset().row(i) for i in range(4)]
        assert reader.close() is True

    def test_rewrite_under_reader_does_not_corrupt_it(self, tmp_path):
        # save_stage replaces the segment via atomic rename; a reader
        # mapped to the old inode keeps seeing the old rows.
        store = ArtifactStore(str(tmp_path), "study", {"seed": 1}, {"n": 1})
        store.save_stage(_STAGE, {"initial": _dataset()})
        reader = store.load_stage(_STAGE)["initial"]

        bigger = _dataset()
        bigger.append("d.com", "DE", 200, 1, None)
        store.save_stage(_STAGE, {"initial": bigger})

        assert len(reader) == 4
        assert reader.row(0) == _dataset().row(0)
        reader.close()
        fresh = store.load_stage(_STAGE)["initial"]
        assert len(fresh) == 5
        fresh.close()


_DUMP_SCRIPT = r"""
import sys

from repro.lumscan.records import ScanDataset
from repro.lumscan.serialize import dump_dataset_lshd

data = ScanDataset()
for domain, country, status, length, body, error, interfered in [
    ("zeta.example", "US", 200, 9000, None, None, False),
    ("zeta.example", "IR", 403, 480, "<html>block</html>", None, True),
    ("alpha.example", "SY", -1, 0, None, "timeout", False),
    ("mid.example", "CN", 403, 50, "fw", None, True),
    ("alpha.example", "RU", 451, 77, "<html>legal</html>", None, False),
]:
    data.append(domain, country, status, length, body,
                error=error, interfered=interfered)
dump_dataset_lshd(data, sys.argv[1])
sys.stdout.buffer.write(open(sys.argv[1], "rb").read())
"""


def _dump_with_hash_seed(seed: str, tmp_path) -> bytes:
    env = os.environ.copy()
    env["PYTHONHASHSEED"] = seed
    src_dir = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")
    result = subprocess.run(
        [sys.executable, "-c", _DUMP_SCRIPT,
         str(tmp_path / f"seed{seed}.lshd")],
        capture_output=True, env=env, check=True)
    return result.stdout


class TestCheckpointHashSeedIndependence:
    def test_segments_identical_across_hash_seeds(self, tmp_path):
        first = _dump_with_hash_seed("1", tmp_path)
        second = _dump_with_hash_seed("2", tmp_path)
        assert first.startswith(b"LSHD")
        assert first == second

    def test_segments_stable_across_repeat_runs(self, tmp_path):
        assert _dump_with_hash_seed("42", tmp_path) \
            == _dump_with_hash_seed("43", tmp_path)
