"""Tests for the domain population generator."""

import pytest

from repro.websim.domains import (
    AKAMAI,
    CLOUDFLARE,
    CDN_PROVIDERS,
    Domain,
    DomainPopulation,
    ORIGIN,
)


@pytest.fixture(scope="module")
def population():
    return DomainPopulation.generate(size=3000, seed=11)


class TestGeneration:
    def test_size(self, population):
        assert len(population) == 3000

    def test_unique_names(self, population):
        names = [d.name for d in population]
        assert len(set(names)) == len(names)

    def test_ranks_sequential(self, population):
        assert [d.rank for d in population] == list(range(1, 3001))

    def test_deterministic(self):
        a = DomainPopulation.generate(size=200, seed=5)
        b = DomainPopulation.generate(size=200, seed=5)
        assert [d.name for d in a] == [d.name for d in b]
        assert [d.provider for d in a] == [d.provider for d in b]

    def test_seed_changes_population(self):
        a = DomainPopulation.generate(size=200, seed=5)
        b = DomainPopulation.generate(size=200, seed=6)
        assert [d.name for d in a] != [d.name for d in b]

    def test_size_validation(self):
        with pytest.raises(ValueError):
            DomainPopulation.generate(size=0)

    def test_duplicate_rejected(self):
        domain = Domain(name="x.com", rank=1, tld="com", category="Business",
                        provider=ORIGIN)
        with pytest.raises(ValueError):
            DomainPopulation([domain, domain])


class TestProviderShares:
    def test_cloudflare_share_plausible(self, population):
        share = len(population.by_provider(CLOUDFLARE)) / len(population)
        assert 0.10 < share < 0.18

    def test_origin_majority(self, population):
        share = len(population.by_provider(ORIGIN)) / len(population)
        assert share > 0.5

    def test_all_providers_valid(self, population):
        valid = set(CDN_PROVIDERS) | {ORIGIN}
        assert all(d.provider in valid for d in population)

    def test_cf_tier_only_on_cloudflare(self, population):
        for domain in population:
            if domain.provider == CLOUDFLARE:
                assert domain.cf_tier in ("enterprise", "business", "pro", "free")
            else:
                assert domain.cf_tier is None

    def test_free_tier_dominates(self, population):
        tiers = [d.cf_tier for d in population.by_provider(CLOUDFLARE)]
        assert tiers.count("free") > len(tiers) * 0.4

    def test_secondary_provider_distinct(self, population):
        for domain in population:
            if domain.secondary_provider is not None:
                assert domain.secondary_provider != domain.provider
                assert domain.provider in ("akamai", "incapsula")

    def test_some_dual_service_domains(self, population):
        dual = [d for d in population if d.secondary_provider]
        assert dual  # zales.com-style dual-header domains exist


class TestBrandFamily:
    def test_brand_sites_share_label(self, population):
        brand = [d for d in population if d.brand]
        assert len(brand) >= 10
        labels = {d.brand for d in brand}
        assert len(labels) == 1
        label = labels.pop()
        assert all(d.name.startswith(f"{label}.") for d in brand)

    def test_brand_tlds_differ(self, population):
        brand = [d for d in population if d.brand]
        tlds = [d.tld for d in brand]
        assert len(set(tlds)) == len(tlds)

    def test_brand_disabled(self):
        pop = DomainPopulation.generate(size=500, seed=1, brand_family_size=0)
        assert not [d for d in pop if d.brand]


class TestLookups:
    def test_get(self, population):
        first = population.top(1)[0]
        assert population.get(first.name) is first

    def test_get_missing(self, population):
        with pytest.raises(KeyError):
            population.get("definitely-not-generated.test")

    def test_top_ordering(self, population):
        top = population.top(10)
        assert [d.rank for d in top] == list(range(1, 11))

    def test_by_category(self, population):
        shopping = population.by_category("Shopping")
        assert all(d.category == "Shopping" for d in shopping)
        assert shopping

    def test_contains(self, population):
        name = population.top(1)[0].name
        assert name in population
        assert "nope.example" not in population

    def test_url(self, population):
        domain = population.top(1)[0]
        assert domain.url == f"http://{domain.name}/"

    def test_dead_fraction(self, population):
        dead = sum(1 for d in population if d.dead)
        assert 0.015 < dead / len(population) < 0.06
