"""Frozen-world equivalence: pack-loaded worlds are bit-identical replicas.

The worldpack exists so process-pool workers can map the parent's
immutable world state zero-copy instead of rebuilding it.  That is only
sound if a pack-loaded world is *indistinguishable* from a rebuilt one
everywhere a probe can look — the tests here pin that down layer by
layer:

1. every frozen structure (population, policies, degradations,
   censorship, GeoIP entries and country order, address plan, DNS, page
   lengths, config) round-trips exactly;
2. probe outcomes — ``Lumscan.run_task`` over a hypothesis-driven slice
   of (domain, country, sample) identities — are equal on both worlds;
3. a process-pool scan serializes to byte-identical datasets whether
   workers map the pack or rebuild from the spec, at any worker count;
4. the fallback, release, and tamper paths fail safe: a worker that
   cannot map the pack rebuilds, a released pack raises, a fingerprint
   mismatch is rejected.
"""

import dataclasses
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.lumscan.engine import ScanEngine, scan_tasks
from repro.lumscan.scanner import Lumscan
from repro.lumscan.serialize import dump_dataset
from repro.lumscan.shards import shm_available
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig
from repro.websim.worldpack import (
    FREEZE_MODES,
    WorldPackReader,
    freeze_world,
    load_world,
    read_worldpack_header,
    write_worldpack_file,
)


@pytest.fixture(scope="module")
def built_world():
    return World(WorldConfig.nano())


@pytest.fixture(scope="module")
def pack(built_world):
    frozen = freeze_world(built_world)
    yield frozen
    frozen.release()


@pytest.fixture(scope="module")
def loaded_world(pack):
    return load_world(pack.handle)


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _clean_urls(world, n):
    urls = []
    for domain in world.population:
        if not domain.dead and not domain.redirect_loop:
            urls.append(f"http://{domain.name}/")
            if len(urls) == n:
                break
    return urls


def _encoded(data, tmp_path, name):
    path = str(tmp_path / f"{name}.jsonl.gz")
    dump_dataset(data, path)
    with open(path, "rb") as handle:
        return handle.read()


class TestRoundTrip:
    def test_source_markers(self, built_world, loaded_world):
        assert built_world.source == "build"
        assert loaded_world.source == "pack"

    def test_config_round_trips(self, built_world, loaded_world):
        assert loaded_world.config == built_world.config

    def test_population_identical(self, built_world, loaded_world):
        assert list(loaded_world.population) == list(built_world.population)

    def test_policies_identical_including_order(self, built_world,
                                                loaded_world):
        assert loaded_world.policies == built_world.policies
        assert list(loaded_world.policies) == list(built_world.policies)

    def test_degradations_and_censorship_identical(self, built_world,
                                                   loaded_world):
        assert loaded_world.degradations == built_world.degradations
        assert loaded_world.censorship == built_world.censorship

    def test_geoip_entries_and_country_order(self, built_world,
                                             loaded_world):
        # First-match semantics make entry order part of GeoIP behavior.
        assert loaded_world.geoip._entries == built_world.geoip._entries
        assert list(loaded_world.geoip._countries) == \
            list(built_world.geoip._countries)

    def test_address_plan_identical(self, built_world, loaded_world):
        assert loaded_world.allocator._next == built_world.allocator._next
        assert loaded_world.allocator._blocks == built_world.allocator._blocks
        assert loaded_world._appengine_cidrs == built_world._appengine_cidrs

    def test_dns_materializes_lazily_and_identically(self, pack):
        fresh = load_world(pack.handle)
        assert fresh._dns is None  # not parsed until first use
        reference = World(WorldConfig.nano())
        for domain in list(reference.population)[:40]:
            for rtype in ("A", "NS"):
                assert fresh.dns.try_query(domain.name, rtype) == \
                    reference.dns.try_query(domain.name, rtype)
        assert fresh._dns is not None

    def test_cached_page_lengths_round_trip(self, built_world, pack):
        # The parent's memoized lengths must be served from the frozen
        # index — same values, no recompute, no page materialization.
        loaded = load_world(pack.handle)
        for name, length in built_world._page_length_cache.items():
            domain = built_world.population.get(name)
            assert loaded._page_length(domain) == length

    def test_geoblocking_domains_identical(self, built_world, loaded_world):
        assert loaded_world.geoblocking_domains() == \
            built_world.geoblocking_domains()


class TestProbeEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(0, 10 ** 6), st.sampled_from(
        ("US", "CN", "RU", "IR", "SY", "DE", "BR", "NG")),
        st.integers(0, 2))
    def test_run_task_identical(self, built_world, loaded_world,
                                index, country, sample):
        domains = [d for d in built_world.population
                   if not d.dead][index % 120:][:3]
        urls = [f"http://{d.name}/" for d in domains]
        tasks = scan_tasks(urls, [country], samples=sample + 1)
        built = Lumscan(LuminatiClient(built_world), seed=11)
        loaded = Lumscan(LuminatiClient(loaded_world), seed=11)
        for task in tasks:
            assert loaded.run_task(task) == built.run_task(task)

    def test_geoblocking_slice_identical(self, built_world, loaded_world):
        urls = [f"http://{name}/"
                for name in built_world.geoblocking_domains()[:10]]
        countries = ["US", "IR", "CN", "RU"]
        tasks = scan_tasks(urls, countries, samples=2)
        built = Lumscan(LuminatiClient(built_world), seed=7)
        loaded = Lumscan(LuminatiClient(loaded_world), seed=7)
        for task in tasks:
            assert loaded.run_task(task) == built.run_task(task)


class TestEngineByteIdentity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_pack_and_rebuild_scans_identical(self, built_world, tmp_path,
                                              workers):
        urls = _clean_urls(built_world, 12)
        countries = ["US", "IR", "CN"]

        def scan(world_source):
            engine = ScanEngine(
                Lumscan(LuminatiClient(built_world), seed=11),
                workers=workers, chunk_size=8, executor="process",
                world_source=world_source)
            return engine, engine.scan(urls, countries, samples=2)

        packed_engine, packed = scan("pack")
        rebuilt_engine, rebuilt = scan("rebuild")
        assert _encoded(packed, tmp_path, f"pack{workers}") == \
            _encoded(rebuilt, tmp_path, f"rebuild{workers}")
        assert packed_engine.worker_init_stats().pack_loads == \
            packed_engine.worker_init_stats().spawned
        assert rebuilt_engine.worker_init_stats().pack_loads == 0

    def test_init_stats_accumulate(self, built_world):
        engine = ScanEngine(Lumscan(LuminatiClient(built_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            world_source="auto")
        engine.scan(_clean_urls(built_world, 8), ["US"], samples=1)
        stats = engine.worker_init_stats()
        assert stats.spawned >= 1
        assert stats.spawn_seconds > 0.0
        assert stats.build_seconds >= 0.0
        assert stats.rss_peak_bytes >= 0

    def test_unknown_world_source_rejected(self, built_world):
        with pytest.raises(ValueError, match="world_source"):
            ScanEngine(Lumscan(LuminatiClient(built_world), seed=11),
                       executor="process", world_source="cache")


class TestFallbackAndRelease:
    def test_spec_falls_back_to_rebuild_on_released_pack(self, built_world):
        scanner = Lumscan(LuminatiClient(built_world), seed=11)
        frozen = scanner.freeze_world_pack()
        handle = frozen.handle
        frozen.release()
        replica = scanner.spawn_spec(world_source=handle).build()
        assert replica is not None  # rebuilt, not mapped

    def test_released_pack_handle_raises(self, built_world):
        frozen = freeze_world(built_world)
        frozen.release()
        assert frozen.released
        with pytest.raises(ValueError):
            frozen.handle

    def test_release_is_idempotent(self, built_world):
        frozen = freeze_world(built_world)
        frozen.release()
        frozen.release()  # second call must be a no-op

    def test_fingerprint_mismatch_rejected(self, built_world, tmp_path):
        path = str(tmp_path / "world.lshw")
        handle = write_worldpack_file(built_world, path)
        forged = dataclasses.replace(handle, fingerprint="0" * 32)
        with pytest.raises(ValueError, match="fingerprint"):
            WorldPackReader(forged)

    def test_unknown_freeze_mode_rejected(self, built_world):
        assert FREEZE_MODES == ("auto", "shm", "file")
        with pytest.raises(ValueError, match="mode"):
            freeze_world(built_world, mode="tape")


class TestFileTransport:
    def test_file_pack_loads_identically(self, built_world, tmp_path):
        frozen = freeze_world(built_world, mode="file",
                              directory=str(tmp_path))
        try:
            loaded = load_world(frozen.handle)
            assert list(loaded.population) == list(built_world.population)
            assert loaded.policies == built_world.policies
        finally:
            frozen.release()

    def test_release_unlinks_file(self, built_world, tmp_path):
        frozen = freeze_world(built_world, mode="file",
                              directory=str(tmp_path))
        path = frozen.handle.ref
        assert os.path.exists(path)
        frozen.release()
        assert not os.path.exists(path)

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_shm_release_unlinks_segment(self, built_world):
        before = set(os.listdir("/dev/shm"))
        frozen = freeze_world(built_world, mode="shm")
        assert set(os.listdir("/dev/shm")) - before != set()
        frozen.release()
        assert set(os.listdir("/dev/shm")) - before == set()

    def test_header_is_readable_without_mapping(self, built_world,
                                                tmp_path):
        path = str(tmp_path / "world.lshw")
        handle = write_worldpack_file(built_world, path)
        header = read_worldpack_header(path)
        assert header["fingerprint"] == handle.fingerprint
        assert header["size"] == len(built_world.population)
        names = [section["name"] for section in header["sections"]]
        assert "tld_codes" in names
        assert "config" in names


class TestStageStats:
    def test_worker_init_accounting_reaches_stage_stats(self):
        from repro.core.pipeline import StudyConfig, run_top10k_study

        world = World(WorldConfig.nano())
        result = run_top10k_study(world, config=StudyConfig(
            workers=2, executor="process", world_source="auto"))
        spawned = sum(s.workers_spawned for s in result.stage_stats)
        assert spawned > 0
        scan_stages = [s for s in result.stage_stats if s.workers_spawned]
        assert all(s.worker_spawn_seconds > 0.0 for s in scan_stages)
        assert all(s.worker_pack_loads == s.workers_spawned
                   for s in scan_stages)
        entry = scan_stages[0].as_dict()
        for key in ("workers_spawned", "worker_spawn_seconds",
                    "world_build_seconds", "worker_pack_loads"):
            assert key in entry


class TestCLI:
    def test_world_freeze_and_inspect(self, tmp_path, capsys):
        from repro.cli import main

        path = str(tmp_path / "nano.lshw")
        assert main(["--scale", "nano", "world", "freeze", path]) == 0
        out = capsys.readouterr().out
        assert "fingerprint:" in out
        assert main(["world", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert "sections:" in out
        assert "tld_codes" in out

    def test_world_inspect_rejects_non_pack(self, tmp_path):
        from repro.cli import main

        bogus = tmp_path / "not-a-pack"
        bogus.write_bytes(b"nope")
        with pytest.raises(SystemExit):
            main(["world", "inspect", str(bogus)])
