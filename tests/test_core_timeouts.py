"""Tests for timeout-based geoblocking detection (§7.3 extension)."""

import pytest

from repro.core.timeouts import (
    ConfirmedTimeoutBlock,
    confirm_timeout_blocks,
    find_timeout_candidates,
    run_timeout_study,
)
from repro.lumscan.records import NO_RESPONSE, ScanDataset
from repro.lumscan.scanner import Lumscan
from repro.proxynet.luminati import LuminatiClient
from repro.websim.policies import ACTION_DROP


def _dataset(spec):
    """spec: {(domain, country): (failures, successes)}"""
    data = ScanDataset()
    for (domain, country), (fails, oks) in spec.items():
        for _ in range(fails):
            data.append(domain, country, NO_RESPONSE, 0, None, error="timeout")
        for _ in range(oks):
            data.append(domain, country, 200, 9_000, None)
    return data


class TestCandidates:
    def test_all_fail_pair_flagged(self):
        spec = {("a.com", "IR"): (3, 0)}
        spec.update({("a.com", c): (0, 3)
                     for c in ("US", "DE", "FR", "GB", "JP", "BR")})
        candidates = find_timeout_candidates(_dataset(spec))
        assert [(c.domain, c.country) for c in candidates] == [("a.com", "IR")]
        assert candidates[0].countries_responsive == 6

    def test_partial_failures_not_flagged(self):
        spec = {("a.com", "IR"): (2, 1)}
        spec.update({("a.com", c): (0, 3)
                     for c in ("US", "DE", "FR", "GB", "JP", "BR")})
        assert find_timeout_candidates(_dataset(spec)) == []

    def test_dead_domain_not_flagged(self):
        # Fails everywhere -> not alive elsewhere -> not a candidate.
        spec = {("dead.com", c): (3, 0)
                for c in ("IR", "US", "DE", "FR", "GB", "JP")}
        assert find_timeout_candidates(_dataset(spec)) == []

    def test_min_responsive_threshold(self):
        spec = {("a.com", "IR"): (3, 0),
                ("a.com", "US"): (0, 3),
                ("a.com", "DE"): (0, 3)}
        assert find_timeout_candidates(_dataset(spec),
                                       min_responsive_countries=5) == []
        found = find_timeout_candidates(_dataset(spec),
                                        min_responsive_countries=2)
        assert len(found) == 1


class _StubScanner:
    """Scripted resample results: {(domain, country): [ok, ok, ...]}."""

    def __init__(self, outcomes):
        self._outcomes = outcomes

    def resample(self, pairs, samples, epoch=0):
        data = ScanDataset()
        for domain, country in pairs:
            script = self._outcomes.get((domain, country), [])
            for i in range(samples):
                ok = script[i % len(script)] if script else False
                if ok:
                    data.append(domain, country, 200, 9_000, None)
                else:
                    data.append(domain, country, NO_RESPONSE, 0, None,
                                error="timeout")
        return data


class TestConfirmationSemantics:
    def _candidate(self, domain, country):
        from repro.core.timeouts import TimeoutCandidate
        return TimeoutCandidate(domain=domain, country=country, failures=3,
                                countries_responsive=10)

    def test_all_fail_confirms(self):
        scanner = _StubScanner({("a.com", "DE"): [False]})
        confirmed = confirm_timeout_blocks(
            scanner, [self._candidate("a.com", "DE")],
            samples=20, screen_samples=10)
        assert len(confirmed) == 1
        assert confirmed[0].total_samples == 3 + 10 + 20
        assert not confirmed[0].ambiguous_censorship

    def test_screen_success_rejects(self):
        # One success inside the strict screen kills the candidate.
        scanner = _StubScanner({("a.com", "DE"): [False] * 9 + [True]})
        confirmed = confirm_timeout_blocks(
            scanner, [self._candidate("a.com", "DE")],
            samples=20, screen_samples=10)
        assert confirmed == []

    def test_single_stray_success_in_confirm_tolerated(self):
        # Screen (first 10 draws) all-fail; confirm pass has one success.
        script = [False] * 10 + [False] * 7 + [True] + [False] * 12
        scanner = _StubScanner({("a.com", "DE"): script})
        confirmed = confirm_timeout_blocks(
            scanner, [self._candidate("a.com", "DE")],
            samples=20, screen_samples=10, allowed_successes=1)
        assert len(confirmed) == 1

    def test_two_successes_reject(self):
        script = [False] * 10 + [True, True] + [False] * 18
        scanner = _StubScanner({("a.com", "DE"): script})
        confirmed = confirm_timeout_blocks(
            scanner, [self._candidate("a.com", "DE")],
            samples=20, screen_samples=10, allowed_successes=1)
        assert confirmed == []

    def test_censoring_country_flagged(self):
        scanner = _StubScanner({("a.com", "CN"): [False]})
        confirmed = confirm_timeout_blocks(
            scanner, [self._candidate("a.com", "CN")],
            samples=20, screen_samples=10)
        assert confirmed[0].ambiguous_censorship

    def test_no_screen_mode(self):
        scanner = _StubScanner({("a.com", "DE"): [False]})
        confirmed = confirm_timeout_blocks(
            scanner, [self._candidate("a.com", "DE")],
            samples=20, screen_samples=0)
        assert len(confirmed) == 1
        assert confirmed[0].total_samples == 3 + 20


class TestEndToEnd:
    @pytest.fixture(scope="class")
    def world(self):
        from repro.websim.world import World, WorldConfig
        return World(WorldConfig.tiny(seed=11))

    def _drop_pair(self, world):
        for name, policy in world.policies.items():
            if policy.action != ACTION_DROP:
                continue
            domain = world.population.get(name)
            if domain.dead or domain.redirect_loop or domain.censored_in:
                continue
            reachable = [c for c in sorted(policy.blocked_countries)
                         if c in world.registry
                         and world.registry.get(c).luminati]
            if reachable:
                return name, reachable[0]
        return None, None

    def test_drop_policy_detected(self, world):
        name, country = self._drop_pair(world)
        if name is None:
            pytest.skip("no timeout-blocking domain in this world")
        policy = world.policies[name]
        blocked = [c for c in sorted(policy.blocked_countries)
                   if c in world.registry
                   and world.registry.get(c).luminati]
        scanner = Lumscan(LuminatiClient(world), seed=4)
        open_countries = [c for c in world.registry.luminati_codes()
                          if not world.is_geoblocked(name, c)][:8]
        initial = scanner.scan([f"http://{name}/"],
                               open_countries + blocked, samples=3)
        result = run_timeout_study(scanner, initial,
                                   min_responsive_countries=4)
        confirmed = {(c.domain, c.country) for c in result.confirmed}
        # Mislocated exits can break any single pair's failure streak
        # (~10-15% each); detection of the domain via at least one of its
        # blocked countries is the robust claim.
        assert any((name, c) in confirmed for c in blocked)

    def test_flaky_pairs_mostly_rejected(self, world):
        # Scan clean (non-blocking) domains across flaky countries; the
        # confirmation stage must reject (nearly) every candidate.
        scanner = Lumscan(LuminatiClient(world), seed=9)
        clean = [d.name for d in world.population
                 if not d.dead and not d.redirect_loop
                 and d.name not in world.policies
                 and not d.censored_in][:40]
        countries = world.registry.luminati_codes()[:12]
        initial = scanner.scan([f"http://{d}/" for d in clean], countries,
                               samples=3)
        result = run_timeout_study(scanner, initial,
                                   min_responsive_countries=4)
        # Candidates may exist (flaky pairs fail 3/3 with p=0.73), but
        # 20 more all-fail samples has p≈0.12 per flaky candidate.
        assert len(result.confirmed) <= max(2, len(result.candidates) * 0.4)

    def test_ambiguity_flag(self):
        candidates = [
            ConfirmedTimeoutBlock("a.com", "CN", 23, ambiguous_censorship=True),
            ConfirmedTimeoutBlock("a.com", "DE", 23, ambiguous_censorship=False),
        ]
        from repro.core.timeouts import TimeoutStudyResult
        result = TimeoutStudyResult(candidates=[], confirmed=candidates)
        assert [c.country for c in result.unambiguous] == ["DE"]
