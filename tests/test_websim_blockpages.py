"""Tests for the block-page templates."""

import random

import pytest

from repro.websim import blockpages as bp


@pytest.fixture
def rng():
    return random.Random(42)


class TestRendering:
    def test_all_page_types_render(self, rng):
        for page_type in bp.ALL_PAGE_TYPES:
            page = bp.render(page_type, rng, "example.com", "IR")
            assert page.page_type == page_type
            assert page.body
            assert page.status in (403, 503)

    def test_unknown_type_raises(self, rng):
        with pytest.raises(ValueError):
            bp.render("not-a-page", rng, "e.com", "IR")

    def test_fourteen_page_types(self):
        # Table 2 lists exactly 14 fingerprinted page types; the renderer
        # catalog additionally carries the unfingerprinted 451 page.
        assert len(bp.ALL_PAGE_TYPES) == 14
        assert set(bp.RENDERERS) == set(bp.ALL_PAGE_TYPES) | {bp.NGINX_451}

    def test_451_page(self, rng):
        page = bp.render(bp.NGINX_451, rng, "e.com", "IR")
        assert page.status == 451
        assert "Legal Reasons" in page.body
        assert bp.NGINX_451 not in bp.ALL_PAGE_TYPES

    def test_five_explicit_types(self):
        # §4.1.3: 5 pages explicitly signal geoblocking.
        assert len(bp.EXPLICIT_GEOBLOCK_TYPES) == 5
        assert set(bp.EXPLICIT_GEOBLOCK_TYPES) == {
            bp.CLOUDFLARE_BLOCK, bp.CLOUDFRONT_BLOCK, bp.BAIDU_BLOCK,
            bp.APPENGINE_BLOCK, bp.AIRBNB_BLOCK,
        }

    def test_type_partition(self):
        explicit = set(bp.EXPLICIT_GEOBLOCK_TYPES)
        challenge = set(bp.CHALLENGE_TYPES)
        ambiguous = set(bp.AMBIGUOUS_TYPES)
        assert not explicit & challenge
        assert not explicit & ambiguous
        assert not challenge & ambiguous
        assert explicit | challenge | ambiguous == set(bp.ALL_PAGE_TYPES)


class TestInstanceVariation:
    def test_cloudflare_ray_ids_differ(self, rng):
        a = bp.render(bp.CLOUDFLARE_BLOCK, rng, "e.com", "IR")
        b = bp.render(bp.CLOUDFLARE_BLOCK, rng, "e.com", "IR")
        assert a.body != b.body  # exact-match fingerprints must fail

    def test_akamai_references_differ(self, rng):
        a = bp.render(bp.AKAMAI_BLOCK, rng, "e.com", "IR")
        b = bp.render(bp.AKAMAI_BLOCK, rng, "e.com", "IR")
        assert a.body != b.body

    def test_host_embedded(self, rng):
        page = bp.render(bp.CLOUDFLARE_BLOCK, rng, "myhost.example", "SY")
        assert "myhost.example" in page.body

    def test_country_embedded_in_cloudflare(self, rng):
        page = bp.render(bp.CLOUDFLARE_BLOCK, rng, "e.com", "SD")
        assert "SD" in page.body

    def test_nginx_page_is_stock(self, rng):
        a = bp.render(bp.NGINX_403, rng, "a.com", "IR")
        b = bp.render(bp.NGINX_403, rng, "b.com", "US")
        assert a.body == b.body  # the stock page carries no identifiers


class TestStatusesAndHeaders:
    def test_js_challenge_is_503(self, rng):
        assert bp.render(bp.CLOUDFLARE_JS, rng, "e.com", "IR").status == 503

    def test_blocks_are_403(self, rng):
        for page_type in bp.EXPLICIT_GEOBLOCK_TYPES:
            assert bp.render(page_type, rng, "e.com", "IR").status == 403

    def test_cloudflare_headers(self, rng):
        page = bp.render(bp.CLOUDFLARE_BLOCK, rng, "e.com", "IR")
        names = {name for name, _ in page.extra_headers}
        assert "CF-RAY" in names
        assert "Server" in names

    def test_cloudfront_headers(self, rng):
        page = bp.render(bp.CLOUDFRONT_BLOCK, rng, "e.com", "IR")
        names = {name for name, _ in page.extra_headers}
        assert "X-Amz-Cf-Id" in names

    def test_incapsula_headers(self, rng):
        page = bp.render(bp.INCAPSULA_BLOCK, rng, "e.com", "IR")
        names = {name for name, _ in page.extra_headers}
        assert "X-Iinfo" in names

    def test_varnish_mentions_guru_meditation(self, rng):
        page = bp.render(bp.VARNISH_403, rng, "e.com", "IR")
        assert "Guru Meditation" in page.body

    def test_airbnb_lists_sanctioned_regions(self, rng):
        page = bp.render(bp.AIRBNB_BLOCK, rng, "stay.fr", "IR")
        assert "Crimea, Iran, Syria, and North Korea" in page.body
