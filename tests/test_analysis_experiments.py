"""Tests for the experiment suite and report rendering."""

import pytest

from repro.analysis.experiments import (
    ExperimentReport,
    ExperimentSuite,
    PAPER_REFERENCE,
)
from repro.websim.world import World, WorldConfig


@pytest.fixture(scope="module")
def report(tiny_world):
    suite = ExperimentSuite(tiny_world)
    return suite.run(pool_pairs=8, pool_samples=30, cf_rule_zones=15_000)


class TestSuiteRun:
    def test_all_tables_present(self, report):
        assert {f"table{i}" for i in range(1, 10)} <= set(report.tables)

    def test_all_figures_present(self, report):
        assert {f"figure{i}" for i in range(1, 6)} <= set(report.figures)

    def test_headline_findings(self, report):
        for key in ("top10k.instances", "top10k.unique_domains",
                    "top1m.rate_any", "ooni.domain_fraction",
                    "vps.fp_rate", "table9.baseline_enterprise"):
            assert key in report.findings

    def test_paper_shape_sanctions_top(self, report):
        measured = report.findings["top10k.top_countries"]
        assert set(measured) <= {"IR", "SY", "SD", "CU", "CN", "RU"}

    def test_paper_shape_provider_ordering(self, report):
        # AppEngine customers geoblock at a far higher rate than
        # Cloudflare/CloudFront customers (§4.2.1).
        appengine = report.findings["top10k.appengine_rate"]
        cloudflare = report.findings["top10k.cloudflare_rate"]
        assert appengine > cloudflare

    def test_ground_truth_quality(self, report):
        assert report.findings["top10k.gt_precision"] >= 0.95
        assert report.findings["top10k.gt_recall"] >= 0.75

    def test_baseline_tracks_table9(self, report):
        measured = report.findings["table9.baseline_enterprise"]
        assert measured == pytest.approx(
            PAPER_REFERENCE["table9.baseline_enterprise"], rel=0.3)


class TestReportRendering:
    def test_to_text(self, report):
        text = report.to_text()
        assert "Table 1" in text
        assert "Figure 5" in text
        assert "Headline findings" in text

    def test_to_markdown(self, report):
        md = report.to_markdown()
        assert "### Table 1" in md
        assert "| Metric | Measured | Paper |" in md

    def test_empty_report_renders(self):
        assert "Headline findings" in ExperimentReport().to_text()
