"""The LSHD shard codec and the engine's streaming-merge primitives.

Covers the full worker→parent transport in isolation: segment encode /
decode round-trips (file and shared memory), deterministic segment
bytes, handle release and exchange-session cleanup, plus unit tests for
the :class:`ChunkReorderBuffer` (out-of-order reassembly, duplicate
rejection) and the :class:`ChunkAutotuner` (latency-driven sizing,
clamps, disabled mode).
"""

import os

import pytest

from repro.lumscan.engine import ChunkAutotuner, ChunkReorderBuffer
from repro.lumscan.records import ScanDataset
from repro.lumscan.shards import (
    KIND_FILE,
    KIND_SHM,
    ExchangeSpec,
    SegmentMapping,
    ShardExchange,
    SpillDatasetBuilder,
    decode_shard,
    encode_shard,
    open_shard,
    payload_base,
    read_segment_header,
    release_shard,
    resolve_mode,
    shm_available,
    write_segment_file,
    write_shard,
)

needs_shm = pytest.mark.skipif(not shm_available(),
                               reason="POSIX shared memory unavailable")


def _sample_dataset() -> ScanDataset:
    data = ScanDataset()
    data.append("alpha.example", "US", 200, 1234, "hello world")
    data.append("alpha.example", "IR", 403, 0, "blocked", interfered=True)
    data.append("beta.example", "US", 0, 0, None, error="conn-timeout")
    data.append("beta.example", "IR", 200, 9999, None)
    data.append("gamma.example", "CN", 0, 0, None, error="proxy-5xx")
    data.append("gamma.example", "US", 0, 0, None, error="conn-timeout")
    return data


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _roundtrip(tmp_path, mode):
    source = _sample_dataset()
    spec = ExchangeSpec(mode=mode, directory=str(tmp_path))
    handle = write_shard(source.export_columns(), spec, seq=0)
    merged = ScanDataset()
    try:
        with open_shard(handle) as reader:
            merged.extend_columns(reader.columns)
    finally:
        release_shard(handle)
    return source, merged


class TestSegmentRoundTrip:
    def test_file_roundtrip_preserves_rows(self, tmp_path):
        source, merged = _roundtrip(tmp_path, KIND_FILE)
        assert _rows(merged) == _rows(source)

    @needs_shm
    def test_shm_roundtrip_preserves_rows(self, tmp_path):
        source, merged = _roundtrip(tmp_path, KIND_SHM)
        assert _rows(merged) == _rows(source)

    def test_roundtrip_into_nonempty_dataset_remaps_codes(self, tmp_path):
        # The parent dataset already interned other labels, so every
        # shard code must be remapped, not copied.
        merged = ScanDataset()
        merged.append("zeta.example", "JP", 200, 10, "first")
        merged.append("alpha.example", "US", 0, 0, None, error="dns-nxdomain")
        source = _sample_dataset()
        spec = ExchangeSpec(mode=KIND_FILE, directory=str(tmp_path))
        handle = write_shard(source.export_columns(), spec, seq=0)
        try:
            with open_shard(handle) as reader:
                merged.extend_columns(reader.columns)
        finally:
            release_shard(handle)
        assert _rows(merged)[2:] == _rows(source)
        assert merged.row(0).domain == "zeta.example"
        assert merged.row(1).error == "dns-nxdomain"

    def test_empty_dataset_roundtrips(self, tmp_path):
        spec = ExchangeSpec(mode=KIND_FILE, directory=str(tmp_path))
        handle = write_shard(ScanDataset().export_columns(), spec, seq=0)
        merged = ScanDataset()
        try:
            with open_shard(handle) as reader:
                merged.extend_columns(reader.columns)
        finally:
            release_shard(handle)
        assert len(merged) == 0


class TestSegmentDeterminism:
    def test_identical_rows_identical_bytes(self, tmp_path):
        # Segment bytes are a pure function of the rows: two datasets
        # built the same way must serialize to identical segments.
        a, _, na = encode_shard(_sample_dataset().export_columns())
        b, _, nb = encode_shard(_sample_dataset().export_columns())
        assert a == b and na == nb
        spec = ExchangeSpec(mode=KIND_FILE, directory=str(tmp_path))
        first = write_shard(_sample_dataset().export_columns(), spec, seq=0)
        second = write_shard(_sample_dataset().export_columns(), spec, seq=1)
        try:
            with open(first.ref, "rb") as fh:
                blob_a = fh.read()
            with open(second.ref, "rb") as fh:
                blob_b = fh.read()
        finally:
            release_shard(first)
            release_shard(second)
        assert blob_a == blob_b

    def test_payload_sections_are_aligned(self):
        header, payload, _ = encode_shard(_sample_dataset().export_columns())
        base = payload_base(header)
        assert base % 16 == 0
        for offset, _blob in payload:
            assert (base + offset) % 16 == 0


class TestHandleLifecycle:
    def test_release_removes_spill_file_and_is_idempotent(self, tmp_path):
        spec = ExchangeSpec(mode=KIND_FILE, directory=str(tmp_path))
        handle = write_shard(_sample_dataset().export_columns(), spec, seq=3)
        assert os.path.exists(handle.ref)
        release_shard(handle)
        assert not os.path.exists(handle.ref)
        release_shard(handle)  # second release must be a no-op

    @needs_shm
    def test_release_unlinks_shm_and_is_idempotent(self):
        spec = ExchangeSpec(mode=KIND_SHM, directory="")
        handle = write_shard(_sample_dataset().export_columns(), spec, seq=0)
        release_shard(handle)
        with pytest.raises(FileNotFoundError):
            open_shard(handle)
        release_shard(handle)  # idempotent

    def test_no_temp_residue_after_write(self, tmp_path):
        spec = ExchangeSpec(mode=KIND_FILE, directory=str(tmp_path))
        handle = write_shard(_sample_dataset().export_columns(), spec, seq=0)
        names = sorted(os.listdir(tmp_path))
        release_shard(handle)
        assert names == [os.path.basename(handle.ref)]


class TestShardExchange:
    def test_file_session_directory_lifecycle(self, tmp_path):
        exchange = ShardExchange("file", spill_dir=str(tmp_path))
        with exchange:
            session = exchange.directory
            assert session is not None and os.path.isdir(session)
            spec = exchange.spec()
            handle = write_shard(_sample_dataset().export_columns(),
                                 spec, seq=0)
            assert os.path.dirname(handle.ref) == session
        # Closing the session removes the directory and any segments
        # still inside it — the engine's error paths rely on this.
        assert not os.path.exists(session)

    def test_spec_before_open_raises(self):
        with pytest.raises(RuntimeError):
            ShardExchange("file").spec()

    def test_auto_resolves_to_concrete_kind(self):
        assert resolve_mode("auto") in (KIND_SHM, KIND_FILE)
        assert resolve_mode("file") == KIND_FILE
        with pytest.raises(ValueError):
            resolve_mode("pigeon")


class TestSegmentFile:
    def test_roundtrip_preserves_rows(self, tmp_path):
        source = _sample_dataset()
        target = str(tmp_path / "data.lshd")
        total = write_segment_file(source.export_columns(), target)
        assert total == os.path.getsize(target)
        mapping = SegmentMapping(target)
        try:
            merged = ScanDataset()
            merged.extend_columns(decode_shard(mapping.buffer))
        finally:
            assert mapping.close()
        assert _rows(merged) == _rows(source)

    def test_fingerprinted_and_deterministic(self, tmp_path):
        a, b = str(tmp_path / "a.lshd"), str(tmp_path / "b.lshd")
        write_segment_file(_sample_dataset().export_columns(), a)
        write_segment_file(_sample_dataset().export_columns(), b)
        with open(a, "rb") as fh:
            blob_a = fh.read()
        with open(b, "rb") as fh:
            blob_b = fh.read()
        assert blob_a == blob_b
        header = read_segment_header(a)
        assert header["fingerprint"] == read_segment_header(b)["fingerprint"]
        assert len(header["fingerprint"]) == 32  # blake2b-128 hex

    def test_no_temp_residue(self, tmp_path):
        write_segment_file(_sample_dataset().export_columns(),
                           str(tmp_path / "data.lshd"))
        assert sorted(os.listdir(tmp_path)) == ["data.lshd"]

    def test_header_reads_without_mapping_payload(self, tmp_path):
        source = _sample_dataset()
        target = str(tmp_path / "data.lshd")
        write_segment_file(source.export_columns(), target)
        header = read_segment_header(target)
        assert header["n"] == len(source)
        assert [name for name, _, _, _ in header["columns"]] \
            == ["dcodes", "ccodes", "statuses", "lengths", "ecodes"]
        assert [name for name, _, _ in header["json"]] \
            == ["domains", "countries", "errors", "bodies", "interfered"]

    def test_bad_magic_rejected(self, tmp_path):
        bogus = tmp_path / "bogus.lshd"
        bogus.write_bytes(b"not a segment at all")
        with pytest.raises(ValueError):
            read_segment_header(str(bogus))

    def test_truncated_header_rejected(self, tmp_path):
        target = str(tmp_path / "data.lshd")
        write_segment_file(_sample_dataset().export_columns(), target)
        with open(target, "rb") as fh:
            blob = fh.read()
        short = tmp_path / "short.lshd"
        short.write_bytes(blob[:10])
        with pytest.raises(ValueError):
            read_segment_header(str(short))


class TestSegmentMapping:
    def test_close_without_views_succeeds(self, tmp_path):
        target = str(tmp_path / "data.lshd")
        write_segment_file(_sample_dataset().export_columns(), target)
        mapping = SegmentMapping(target)
        assert not mapping.closed
        assert mapping.close() is True
        assert mapping.closed
        with pytest.raises(ValueError):
            mapping.buffer

    def test_close_with_live_view_reports_false(self, tmp_path):
        target = str(tmp_path / "data.lshd")
        write_segment_file(_sample_dataset().export_columns(), target)
        mapping = SegmentMapping(target)
        columns = decode_shard(mapping.buffer)
        view = columns.dcodes
        assert mapping.close() is False   # view pins the mapping
        assert int(view[0]) == 0          # ...and stays readable
        del columns, view
        assert mapping.close() is True

    def test_close_is_idempotent(self, tmp_path):
        target = str(tmp_path / "data.lshd")
        write_segment_file(_sample_dataset().export_columns(), target)
        mapping = SegmentMapping(target)
        assert mapping.close() is True
        assert mapping.close() is True


class TestSpillDatasetBuilder:
    def test_bit_identical_to_in_memory_merge(self, tmp_path):
        # The streaming builder's segment must equal the sequential
        # writer's for the same merged rows — the spill merge's core
        # correctness invariant.
        shard_a = _sample_dataset()
        shard_b = ScanDataset()
        shard_b.append("delta.example", "RU", 451, 77, "<html>legal</html>")
        shard_b.append("alpha.example", "CN", 200, 55, None)

        merged = ScanDataset()
        merged.extend_columns(shard_a.export_columns())
        merged.extend_columns(shard_b.export_columns())
        reference = str(tmp_path / "reference.lshd")
        write_segment_file(merged.export_columns(), reference)

        builder = SpillDatasetBuilder(directory=str(tmp_path))
        builder.extend_columns(shard_a.export_columns())
        builder.extend_columns(shard_b.export_columns())
        assert len(builder) == len(merged)
        streamed = str(tmp_path / "streamed.lshd")
        data = builder.finalize(streamed)
        try:
            with open(reference, "rb") as fh:
                ref_blob = fh.read()
            with open(streamed, "rb") as fh:
                spill_blob = fh.read()
            assert spill_blob == ref_blob
            assert data.is_mapped
            assert _rows(data) == _rows(merged)
        finally:
            data.close()

    def test_transient_finalize_unlinks_segment(self, tmp_path):
        builder = SpillDatasetBuilder(directory=str(tmp_path))
        builder.extend_columns(_sample_dataset().export_columns())
        data = builder.finalize()
        try:
            # The anonymous segment is unlinked immediately (POSIX keeps
            # the pages alive), so nothing lingers in the spill dir.
            assert os.listdir(tmp_path) == []
            assert _rows(data) == _rows(_sample_dataset())
        finally:
            data.close()

    def test_empty_builder_finalizes(self, tmp_path):
        builder = SpillDatasetBuilder(directory=str(tmp_path))
        data = builder.finalize()
        try:
            assert len(data) == 0
        finally:
            data.close()

    def test_abort_removes_spill_directory(self, tmp_path):
        builder = SpillDatasetBuilder(directory=str(tmp_path))
        builder.extend_columns(_sample_dataset().export_columns())
        spill = builder.directory
        assert os.path.isdir(spill)
        builder.abort()
        assert not os.path.exists(spill)
        builder.abort()  # idempotent


class TestChunkReorderBuffer:
    def test_reverse_completion_order_reassembles(self):
        buffer = ChunkReorderBuffer()
        for seq in (3, 2, 1):
            buffer.push(seq, f"chunk-{seq}")
            assert buffer.pop_ready() == []  # seq 0 still missing
        buffer.push(0, "chunk-0")
        assert buffer.pop_ready() == [f"chunk-{i}" for i in range(4)]
        assert buffer.pending == 0
        assert buffer.next_seq == 4

    def test_interleaved_completion(self):
        buffer = ChunkReorderBuffer()
        buffer.push(1, "b")
        buffer.push(0, "a")
        assert buffer.pop_ready() == ["a", "b"]
        buffer.push(2, "c")
        assert buffer.pop_ready() == ["c"]

    def test_duplicate_sequence_rejected(self):
        buffer = ChunkReorderBuffer()
        buffer.push(0, "a")
        with pytest.raises(ValueError):
            buffer.push(0, "retry-of-a")
        assert buffer.pop_ready() == ["a"]
        with pytest.raises(ValueError):
            buffer.push(0, "late-retry")  # already merged

    def test_drain_returns_everything_in_order(self):
        buffer = ChunkReorderBuffer()
        buffer.push(5, "f")
        buffer.push(2, "c")
        assert buffer.drain() == ["c", "f"]
        assert buffer.pending == 0


class TestChunkAutotuner:
    def test_disabled_without_target(self):
        tuner = ChunkAutotuner(64, target_seconds=None)
        assert not tuner.enabled
        tuner.record(64, 10.0)
        assert tuner.chunk_size() == 64

    def test_grows_toward_target(self):
        # 1000 probes/s at a 0.25s target wants ~250-task chunks, but
        # growth is clamped to doubling per observation.
        tuner = ChunkAutotuner(32, target_seconds=0.25)
        tuner.record(32, 0.032)
        assert tuner.chunk_size() == 64
        tuner.record(64, 0.064)
        assert tuner.chunk_size() == 128
        tuner.record(128, 0.128)
        assert tuner.chunk_size() == 250

    def test_shrinks_on_slow_chunks(self):
        # 100 probes/s at a 0.25s target wants 25-task chunks; shrink is
        # clamped to halving per observation and floored at min_size.
        tuner = ChunkAutotuner(512, target_seconds=0.25)
        tuner.record(512, 5.12)
        assert tuner.chunk_size() == 256
        tuner.record(256, 2.56)
        assert tuner.chunk_size() == 128
        for _ in range(10):
            tuner.record(tuner.chunk_size(), tuner.chunk_size() / 100.0)
        assert tuner.chunk_size() == 25

    def test_zero_elapsed_is_a_no_op(self):
        # A frozen ManualClock shipped to workers reports zero elapsed;
        # the tuner must hold the size (deterministic chunking).
        tuner = ChunkAutotuner(64, target_seconds=0.25)
        tuner.record(64, 0.0)
        tuner.record(0, 1.0)
        assert tuner.chunk_size() == 64
        assert tuner.rate is None

    def test_respects_min_and_max(self):
        tuner = ChunkAutotuner(16, target_seconds=1.0,
                               min_size=8, max_size=64)
        for _ in range(8):
            tuner.record(tuner.chunk_size(), 1e-6)  # absurdly fast
        assert tuner.chunk_size() == 64
        # The smoothed rate halves per observation, so walking back down
        # from the fast regime takes a stretch of slow chunks.
        for _ in range(40):
            tuner.record(tuner.chunk_size(), 1e6)  # absurdly slow
        assert tuner.chunk_size() == 8

    def test_rejects_bad_initial(self):
        with pytest.raises(ValueError):
            ChunkAutotuner(0, target_seconds=0.25)
