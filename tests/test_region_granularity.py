"""Region-granular geoblocking: the Crimea phenomenon (§4.2.2, §5.2.1).

The paper observed Google AppEngine blocking clients in Crimea while the
rest of their country was unaffected — geoblocking finer than country
granularity.  The simulation models Crimea as a tagged region of
Ukraine's address space with its own netblocks, and AppEngine (and some
brand) policies match on the region.
"""

import random

import pytest

from repro.httpsim.messages import Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers
from repro.websim import blockpages
from repro.websim.countries import CRIMEA
from repro.websim.world import World, WorldConfig


@pytest.fixture(scope="module")
def world():
    return World(WorldConfig.tiny())


def _region_blocked_domain(world):
    for name, policy in world.policies.items():
        domain = world.population.get(name)
        if domain.dead or domain.redirect_loop or domain.censored_in:
            continue
        if (CRIMEA in policy.blocked_regions
                and "UA" not in policy.blocked_countries):
            return name, policy
    return None, None


class TestCrimeaAddressing:
    def test_crimea_block_geolocates_to_ukraine(self, world):
        address = world.residential_address("UA", region=CRIMEA)
        entry = world.geoip.lookup(address)
        # (Modulo the small GeoIP error model.)
        if entry.region is not None:
            assert entry.country == "UA"
            assert entry.region == CRIMEA

    def test_regular_ua_address_has_no_region(self, world):
        address = world.residential_address("UA")
        entry = world.geoip.lookup(address)
        if entry is not None and entry.country == "UA":
            assert entry.region is None

    def test_some_ua_exits_are_in_crimea(self, world):
        from repro.proxynet.luminati import LuminatiClient
        luminati = LuminatiClient(world)
        regions = set()
        for node in luminati.exits("UA"):
            entry = world.geoip.lookup(node.ip)
            if entry and entry.region:
                regions.add(entry.region)
        assert CRIMEA in regions


class TestRegionBlocking:
    def test_crimea_blocked_rest_of_ua_not(self, world):
        name, policy = _region_blocked_domain(world)
        if name is None:
            pytest.skip("no region-only blocked domain in this world")
        rng = random.Random(5)
        request = Request(url=parse_url(f"http://{name}/"),
                          headers=browser_headers())
        crimea_hits = 0
        for _ in range(6):
            ip = world.residential_address("UA", rng, region=CRIMEA)
            response = world.fetch(request, ip)
            if response.status == 403:
                crimea_hits += 1
        assert crimea_hits >= 4

        ua_hits = 0
        for _ in range(6):
            ip = world.residential_address("UA", rng)
            response = world.fetch(request, ip)
            if response.status == 403:
                ua_hits += 1
        assert ua_hits <= 2

    def test_country_study_misses_region_blocks(self, world, tiny_top10k):
        # The paper notes it may miss Crimea because it samples at country
        # granularity: a UA-wide scan rarely lands on Crimea exits, so a
        # region-only block must not be confirmed as a UA country block.
        name, policy = _region_blocked_domain(world)
        if name is None:
            pytest.skip("no region-only blocked domain")
        confirmed_ua = {(c.domain, c.country) for c in tiny_top10k.confirmed}
        assert (name, "UA") not in confirmed_ua


class TestHttp451:
    def test_451_policy_serves_451(self):
        # Find any world seed quickly by checking the policy map directly.
        world = World(WorldConfig.small())
        match = None
        for name, policy in world.policies.items():
            if policy.block_page == blockpages.NGINX_451 and policy.action == "page":
                domain = world.population.get(name)
                if not domain.dead and not domain.redirect_loop:
                    match = (name, policy)
                    break
        if match is None:
            pytest.skip("no 451 adopter in this world")
        name, policy = match
        country = next(iter(policy.blocked_countries))
        if country not in world.registry or not world.registry.get(country).luminati:
            pytest.skip("blocked country unreachable")
        rng = random.Random(1)
        request = Request(url=parse_url(f"http://{name}/"),
                          headers=browser_headers())
        statuses = set()
        for _ in range(5):
            ip = world.residential_address(country, rng)
            statuses.add(world.fetch(request, ip).status)
        assert 451 in statuses

    def test_451_not_fingerprinted(self, registry):
        rng = random.Random(2)
        page = blockpages.render(blockpages.NGINX_451, rng, "x.com", "IR")
        # The 451 page is deliberately outside the 14-type registry.
        assert registry.match(page.body) is None
