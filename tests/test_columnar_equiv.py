"""Property-based equivalence: vectorized kernels vs scalar references.

Every aggregation kernel on :class:`ScanDataset` (and the length
heuristics in :mod:`repro.core.lengths`) is checked against the retained
row-at-a-time implementation in :mod:`repro.core.reference` over
hypothesis-generated datasets — including the empty dataset, all-failure
datasets, and datasets merged with ``extend`` across differently-ordered
code tables.  Equality is exact (``==``), including float results: both
paths divide the same pair of Python/numpy 64-bit integers.
"""

import string

from hypothesis import given, settings, strategies as st

from repro.core import reference
from repro.core.lengths import (
    extract_outliers,
    relative_differences,
    representative_lengths,
)
from repro.lumscan.records import NO_RESPONSE, ScanDataset

_domains = st.sampled_from(
    [f"d{i}.example" for i in range(6)] + ["血腥.example", "a-b.co"])
_countries = st.sampled_from(["US", "DE", "IR", "CN", "RU", "血"])
_statuses = st.sampled_from([200, 200, 200, 403, 404, 500, NO_RESPONSE])
_bodies = st.one_of(st.none(), st.text(alphabet=string.printable, max_size=30))

_records = st.lists(
    st.tuples(_domains, _countries, _statuses,
              st.integers(min_value=0, max_value=100_000), _bodies),
    max_size=60)

# All-failure scans: every probe times out (status NO_RESPONSE, length 0).
_failure_records = st.lists(
    st.tuples(_domains, _countries, st.just(NO_RESPONSE), st.just(0),
              st.none()),
    max_size=30)


def _build(records) -> ScanDataset:
    dataset = ScanDataset()
    for domain, country, status, length, body in records:
        if status == NO_RESPONSE:
            dataset.append(domain, country, NO_RESPONSE, 0, None,
                           error="timeout")
        else:
            dataset.append(domain, country, status, length, body)
    return dataset


_datasets = st.one_of(_records, _failure_records).map(_build)


class TestAggregationEquivalence:
    @given(dataset=_datasets, status=st.sampled_from([200, 403, NO_RESPONSE]))
    def test_count_status(self, dataset, status):
        assert dataset.count_status(status) == \
            reference.count_status(dataset, status)

    @given(dataset=_datasets)
    def test_error_rate_by_domain(self, dataset):
        assert dataset.error_rate_by_domain() == \
            reference.error_rate_by_domain(dataset)

    @given(dataset=_datasets)
    def test_response_rate_by_country(self, dataset):
        assert dataset.response_rate_by_country() == \
            reference.response_rate_by_country(dataset)

    @given(dataset=_datasets)
    def test_lengths_by_domain(self, dataset):
        assert dataset.lengths_by_domain() == \
            reference.lengths_by_domain(dataset)

    @given(dataset=_datasets)
    def test_pairs_run_structure(self, dataset):
        got = [(d, c, s) for d, c, s in dataset.pairs()]
        want = [(d, c, s) for d, c, s in reference.pairs(dataset)]
        assert got == want


class TestLengthKernelEquivalence:
    @given(dataset=_datasets,
           countries=st.one_of(st.none(),
                               st.lists(_countries, max_size=3)))
    def test_representative_lengths(self, dataset, countries):
        assert representative_lengths(dataset, countries) == \
            reference.representative_lengths(dataset, countries)

    @given(dataset=_datasets,
           cutoff=st.sampled_from([0.05, 0.30, 0.95]),
           countries=st.one_of(st.none(), st.lists(_countries, max_size=3)))
    def test_extract_outliers(self, dataset, cutoff, countries):
        reps = representative_lengths(dataset)
        assert extract_outliers(dataset, reps, cutoff=cutoff,
                                countries=countries) == \
            reference.extract_outliers(dataset, reps, cutoff=cutoff,
                                       countries=countries)

    @given(dataset=_datasets,
           raw_cutoff=st.integers(min_value=0, max_value=50_000))
    def test_extract_outliers_raw_cutoff(self, dataset, raw_cutoff):
        reps = representative_lengths(dataset)
        assert extract_outliers(dataset, reps, raw_cutoff=raw_cutoff) == \
            reference.extract_outliers(dataset, reps, raw_cutoff=raw_cutoff)

    @given(dataset=_datasets)
    def test_relative_differences(self, dataset):
        reps = representative_lengths(dataset)
        assert relative_differences(dataset, reps) == \
            reference.relative_differences(dataset, reps)


class TestExtendEquivalence:
    @given(first=_records, second=_records)
    @settings(max_examples=50)
    def test_extend_matches_appending(self, first, second):
        """extend() equals appending the same records one by one.

        The two datasets intern their labels independently (different
        code-table orders), so this exercises the code-table remapping.
        """
        merged = _build(first)
        merged.extend(_build(second))
        appended = _build(first + second)
        assert len(merged) == len(appended)
        assert [merged.row(i) for i in range(len(merged))] == \
            [appended.row(i) for i in range(len(appended))]
        assert merged.error_rate_by_domain() == appended.error_rate_by_domain()
        assert merged.response_rate_by_country() == \
            appended.response_rate_by_country()

    @given(records=_records)
    @settings(max_examples=25)
    def test_extend_onto_empty(self, records):
        merged = ScanDataset()
        merged.extend(_build(records))
        assert [s for s in merged] == [s for s in _build(records)]


class TestEdgeDatasets:
    def test_empty_dataset_kernels(self):
        dataset = ScanDataset()
        assert dataset.count_status(200) == 0
        assert dataset.error_rate_by_domain() == {}
        assert dataset.response_rate_by_country() == {}
        assert dataset.lengths_by_domain() == {}
        assert list(dataset.pairs()) == []
        assert representative_lengths(dataset) == {}
        assert extract_outliers(dataset, {}) == []
        assert relative_differences(dataset, {}) == []

    def test_all_failure_dataset_kernels(self):
        dataset = ScanDataset()
        for i in range(10):
            dataset.append(f"d{i % 3}.example", "US", NO_RESPONSE, 0, None,
                           error="timeout")
        assert dataset.count_status(NO_RESPONSE) == 10
        assert dataset.error_rate_by_domain() == \
            reference.error_rate_by_domain(dataset)
        assert set(dataset.error_rate_by_domain().values()) == {1.0}
        assert dataset.response_rate_by_country() == {"US": 0.0}
        assert dataset.lengths_by_domain() == {}
        assert representative_lengths(dataset) == {}
        assert extract_outliers(dataset, {"d0.example": 100}) == []
