"""Tests for the non-explicit geoblocker consistency analysis (§5.2.2)."""

import random

import pytest

from repro.core.consistency import (
    DomainConsistency,
    confirmed_instances,
    domain_consistency,
)
from repro.lumscan.records import ScanDataset
from repro.websim import blockpages


def _akamai_body(rng, host="a.com"):
    return blockpages.render(blockpages.AKAMAI_BLOCK, rng, host, "IR").body


def _dataset(rng, spec):
    """spec: {(domain, country): (block_samples, ok_samples)}"""
    data = ScanDataset()
    for (domain, country), (blocks, oks) in spec.items():
        for _ in range(blocks):
            body = _akamai_body(rng, domain)
            data.append(domain, country, 403, len(body), body)
        for _ in range(oks):
            data.append(domain, country, 200, 9_000, None)
    return data


@pytest.fixture
def rng():
    return random.Random(11)


class TestScore:
    def test_perfectly_consistent(self, rng):
        # Paper example 1: two countries at 100%, rest never -> score 1.0.
        data = _dataset(rng, {
            ("a.com", "IR"): (20, 0),
            ("a.com", "SY"): (20, 0),
            ("a.com", "US"): (0, 20),
            ("a.com", "DE"): (0, 20),
        })
        record = domain_consistency(data)["a.com"]
        assert record.score == 1.0
        assert record.blocking_countries == ["IR", "SY"]
        assert record.is_confirmed_geoblocker

    def test_partial_consistency(self, rng):
        # Paper example 2: three countries at 90%, one at 20% -> 75%.
        data = _dataset(rng, {
            ("b.com", "IR"): (18, 2),
            ("b.com", "SY"): (18, 2),
            ("b.com", "SD"): (18, 2),
            ("b.com", "FR"): (4, 16),
            ("b.com", "US"): (0, 20),
        })
        record = domain_consistency(data)["b.com"]
        assert record.score == pytest.approx(0.75)
        assert not record.is_confirmed_geoblocker

    def test_blocked_everywhere_excluded(self, rng):
        data = _dataset(rng, {
            ("c.com", "IR"): (20, 0),
            ("c.com", "US"): (20, 0),
        })
        record = domain_consistency(data)["c.com"]
        assert record.score == 1.0
        assert record.blocked_everywhere
        assert not record.is_confirmed_geoblocker

    def test_consistent_countries_80_boundary(self, rng):
        data = _dataset(rng, {
            ("d.com", "IR"): (16, 4),   # exactly 80% -> consistent
            ("d.com", "SY"): (15, 5),   # 75% -> inconsistent
            ("d.com", "US"): (0, 20),
        })
        record = domain_consistency(data)["d.com"]
        assert record.consistent_countries == ["IR"]
        assert record.score == pytest.approx(0.5)


class TestFiltering:
    def test_domains_without_blockpages_excluded(self, rng):
        data = _dataset(rng, {("e.com", "US"): (0, 10)})
        assert domain_consistency(data) == {}

    def test_page_type_restriction(self, rng):
        data = ScanDataset()
        body = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng,
                                 "f.com", "IR").body
        data.append("f.com", "IR", 403, len(body), body)
        restricted = domain_consistency(
            data, page_types=(blockpages.AKAMAI_BLOCK,))
        assert "f.com" not in restricted

    def test_confirmed_instances(self, rng):
        data = _dataset(rng, {
            ("g.com", "IR"): (20, 0),
            ("g.com", "US"): (0, 20),
            ("h.com", "SY"): (10, 10),   # inconsistent
            ("h.com", "US"): (0, 20),
        })
        consistencies = domain_consistency(data)
        instances = confirmed_instances(consistencies)
        assert instances == [("g.com", "IR")]
