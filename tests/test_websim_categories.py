"""Tests for the category taxonomy and TLD distribution."""

import random

import pytest

from repro.websim.categories import CategoryTaxonomy
from repro.websim.tlds import TLD_WEIGHTS, all_tlds, pick_tld


@pytest.fixture(scope="module")
def taxonomy():
    return CategoryTaxonomy()


class TestTaxonomy:
    def test_risky_and_safe_disjoint(self, taxonomy):
        assert not set(taxonomy.safe_names()) & set(taxonomy.risky_names())

    def test_paper_categories_present(self, taxonomy):
        for name in ("Shopping", "Business", "News and Media",
                     "Information Technology", "Finance and Banking",
                     "Child Education", "Job Search", "Travel"):
            assert name in taxonomy

    def test_risky_categories_present(self, taxonomy):
        for name in ("Pornography", "Weapons", "Spam URLs",
                     "Malicious Websites", "Unrated"):
            assert name in taxonomy.risky_names()

    def test_risky_have_zero_affinity(self, taxonomy):
        for name in taxonomy.risky_names():
            assert taxonomy.get(name).block_affinity == 0.0

    def test_shopping_blocks_more_than_education(self, taxonomy):
        assert (taxonomy.get("Shopping").block_affinity
                > taxonomy.get("Education").block_affinity)

    def test_weights_align_with_names(self, taxonomy):
        names = taxonomy.safe_names()
        weights = taxonomy.weights(names)
        assert len(weights) == len(names)
        assert all(w > 0 for w in weights)

    def test_it_is_largest_safe_category(self, taxonomy):
        # Table 4: Information Technology has the most tested domains.
        safe = taxonomy.safe_names()
        weights = dict(zip(safe, taxonomy.weights(safe)))
        assert max(weights, key=weights.get) == "Information Technology"

    def test_get_unknown(self, taxonomy):
        with pytest.raises(KeyError):
            taxonomy.get("Nonexistent Category")

    def test_len(self, taxonomy):
        assert len(taxonomy) == len(taxonomy.names())


class TestTlds:
    def test_com_dominates(self):
        weights = dict(TLD_WEIGHTS)
        assert weights["com"] == max(weights.values())

    def test_pick_tld_distribution(self):
        rng = random.Random(1)
        picks = [pick_tld(rng) for _ in range(2000)]
        share_com = picks.count("com") / len(picks)
        assert 0.4 < share_com < 0.65

    def test_pick_tld_only_known(self):
        rng = random.Random(2)
        known = set(all_tlds())
        assert all(pick_tld(rng) in known for _ in range(200))

    def test_pick_deterministic(self):
        assert ([pick_tld(random.Random(3)) for _ in range(20)]
                == [pick_tld(random.Random(3)) for _ in range(20)])
