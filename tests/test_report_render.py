"""Tests for plain-text/markdown rendering helpers."""

from repro.analysis.figures import FigureData
from repro.analysis.report import render_figure, render_markdown_table, render_table
from repro.analysis.tables import TableData


def _table():
    table = TableData(title="Demo", columns=["Name", "Count"])
    table.rows.append(["alpha", 10])
    table.rows.append(["beta-longer-name", 2])
    return table


class TestRenderTable:
    def test_alignment_width(self):
        text = render_table(_table())
        lines = text.splitlines()
        # All data lines equal width (padded).
        assert len(lines[1]) == len(lines[2])

    def test_titleless_table(self):
        table = _table()
        table.title = ""
        text = render_table(table)
        assert text.splitlines()[0].startswith("Name")

    def test_values_stringified(self):
        text = render_table(_table())
        assert "10" in text


class TestRenderMarkdown:
    def test_separator_row(self):
        md = render_markdown_table(_table())
        lines = md.splitlines()
        assert lines[1] == "|---|---|"

    def test_row_count(self):
        md = render_markdown_table(_table())
        assert len(md.splitlines()) == 2 + 2


class TestRenderFigure:
    def _figure(self, n_points):
        figure = FigureData(title="F", x_label="x", y_label="y")
        figure.add_series("s", [(i, i * 2) for i in range(n_points)])
        return figure

    def test_small_series_full(self):
        text = render_figure(self._figure(5))
        assert "[5 pts]" in text
        assert text.count("(") == 5

    def test_large_series_subsampled(self):
        text = render_figure(self._figure(500), max_points=10)
        assert "[500 pts]" in text
        assert text.count("(") <= 12

    def test_last_point_included(self):
        text = render_figure(self._figure(500), max_points=10)
        assert "(499, 998)" in text

    def test_empty_series(self):
        figure = FigureData(title="F", x_label="x", y_label="y")
        figure.add_series("void", [])
        assert "(empty)" in render_figure(figure)
