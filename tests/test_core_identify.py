"""Tests for CDN customer identification."""

import pytest

from repro.core.identify import (
    CDNPopulation,
    discover_appengine_netblocks,
    identify_by_ns,
    identify_cdn_customers,
)
from repro.datasets.alexa import AlexaList


@pytest.fixture(scope="module")
def identified(nano_world):
    return identify_cdn_customers(nano_world,
                                  AlexaList(nano_world.population).full())


class TestCDNPopulation:
    def test_add_and_of(self):
        population = CDNPopulation()
        population.add("cloudflare", "a.com")
        assert population.of("cloudflare") == {"a.com"}
        assert population.of("akamai") == set()

    def test_multi_service(self):
        population = CDNPopulation()
        population.add("akamai", "z.com")
        population.add("incapsula", "z.com")
        population.add("cloudflare", "only.com")
        assert population.multi_service_domains() == {"z.com"}
        assert population.providers_of("z.com") == ["akamai", "incapsula"]

    def test_all_domains(self):
        population = CDNPopulation()
        population.add("a", "1.com")
        population.add("b", "2.com")
        assert population.all_domains() == {"1.com", "2.com"}


class TestNSIdentification:
    def test_finds_cloudflare_subset(self, nano_world):
        ns = identify_by_ns(nano_world.dns,
                            AlexaList(nano_world.population).full())
        true_cf = {d.name for d in nano_world.population.by_provider("cloudflare")}
        assert ns["cloudflare"] <= true_cf
        # ~95% of CF customers use CF nameservers.
        assert len(ns["cloudflare"]) >= len(true_cf) * 0.75

    def test_akamai_only_fraction(self, nano_world):
        ns = identify_by_ns(nano_world.dns,
                            AlexaList(nano_world.population).full())
        true_ak = {d.name for d in nano_world.population.by_provider("akamai")}
        assert ns["akamai"] <= true_ak
        # NS identification exposes only a fraction (paper: §3.1).
        if len(true_ak) >= 5:
            assert len(ns["akamai"]) < len(true_ak)


class TestNetblockDiscovery:
    def test_65_blocks(self, nano_world):
        assert len(discover_appengine_netblocks(nano_world.dns)) == 65


class TestHeaderIdentification:
    def _truth(self, world, provider):
        return {d.name for d in world.population.by_provider(provider)
                if not d.dead and not d.redirect_loop}

    def test_cloudflare_by_header(self, nano_world, identified):
        truth = self._truth(nano_world, "cloudflare")
        found = identified.of("cloudflare")
        assert found <= {d.name for d in nano_world.population.by_provider("cloudflare")}
        assert len(found & truth) >= len(truth) * 0.9

    def test_cloudfront_by_header(self, nano_world, identified):
        truth = self._truth(nano_world, "cloudfront")
        if not truth:
            pytest.skip("no cloudfront customers in nano world")
        assert len(identified.of("cloudfront") & truth) >= len(truth) * 0.8

    def test_incapsula_by_header(self, nano_world, identified):
        truth = self._truth(nano_world, "incapsula")
        if not truth:
            pytest.skip("no incapsula customers in nano world")
        assert len(identified.of("incapsula") & truth) >= len(truth) * 0.8

    def test_akamai_by_pragma(self, nano_world, identified):
        truth = self._truth(nano_world, "akamai")
        found = identified.of("akamai")
        # Pragma probing beats NS identification.
        ns_found = identify_by_ns(nano_world.dns,
                                  [d for d in truth])["akamai"]
        assert len(found & truth) >= len(ns_found & truth)

    def test_appengine_by_netblock(self, nano_world, identified):
        truth = {d.name for d in nano_world.population.by_provider("appengine")}
        if not truth:
            pytest.skip("no appengine customers in nano world")
        found = identified.of("appengine")
        assert found == truth  # A records are definitive

    def test_dead_domains_not_identified_by_headers(self, nano_world, identified):
        dead_cf = {d.name for d in nano_world.population.by_provider("cloudflare")
                   if d.dead}
        assert not (identified.of("cloudflare") & dead_cf)

    def test_dual_service_detected(self, nano_world, identified):
        dual_truth = {d.name for d in nano_world.population
                      if d.secondary_provider and not d.dead
                      and not d.redirect_loop}
        if not dual_truth:
            pytest.skip("no dual-service domains in nano world")
        assert dual_truth & identified.multi_service_domains()
