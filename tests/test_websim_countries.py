"""Tests for the country registry."""

import pytest

from repro.websim.countries import (
    CountryRegistry,
    CRIMEA,
    SANCTIONED,
    VPS_COUNTRIES,
)


@pytest.fixture(scope="module")
def registry():
    return CountryRegistry()


class TestRegistry:
    def test_size_close_to_paper(self, registry):
        # The paper sampled 195 countries; we carry a comparable registry.
        assert 180 <= len(registry) <= 200

    def test_sanctioned_set(self, registry):
        assert set(registry.sanctioned_codes()) == set(SANCTIONED)

    def test_get_known(self, registry):
        assert registry.get("IR").name == "Iran"
        assert registry.get("US").gdp_rank == 1

    def test_get_unknown_raises(self, registry):
        with pytest.raises(KeyError):
            registry.get("XX")

    def test_contains(self, registry):
        assert "SY" in registry
        assert "XX" not in registry

    def test_north_korea_has_no_luminati(self, registry):
        assert not registry.get("KP").luminati
        assert "KP" not in registry.luminati_codes()

    def test_luminati_coverage_close_to_177(self, registry):
        # 177 of 195 attempted countries responded in the paper.
        assert 170 <= len(registry.luminati_codes()) <= 190

    def test_comoros_is_the_reliability_outlier(self, registry):
        comoros = registry.get("KM")
        others = [c.reliability for c in registry
                  if c.luminati and c.code != "KM"]
        assert comoros.reliability < min(others)

    def test_vps_countries_match_paper(self, registry):
        assert [c.code for c in registry.vps_countries()] == list(VPS_COUNTRIES)
        assert len(registry.vps_countries()) == 16

    def test_crimea_region_on_ukraine(self, registry):
        assert CRIMEA in registry.get("UA").regions

    def test_china_russia_high_abuse(self, registry):
        assert registry.get("CN").abuse_reputation > 0.8
        assert registry.get("RU").abuse_reputation > 0.8
        assert registry.get("CH").abuse_reputation < 0.1

    def test_subset(self, registry):
        sub = registry.subset(["US", "IR"])
        assert len(sub) == 2
        assert sub.codes() == ["US", "IR"]

    def test_subset_vps_partial(self, registry):
        sub = registry.subset(["US", "IR", "DE"])
        codes = [c.code for c in sub.vps_countries()]
        assert codes == ["IR", "US"]

    def test_duplicate_codes_rejected(self, registry):
        country = registry.get("US")
        with pytest.raises(ValueError):
            CountryRegistry([country, country])
