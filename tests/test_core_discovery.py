"""Tests for semi-automated signature discovery."""

import random

import pytest

from repro.core.discovery import (
    cluster_outliers,
    discover,
    extract_signature,
    label_cluster,
    registry_from_discovery,
)
from repro.core.fingerprints import FingerprintRegistry
from repro.websim import blockpages
from repro.websim.content import generate_page


@pytest.fixture
def rng():
    return random.Random(17)


def _bodies(rng, page_type, n, host="h.com", country="IR"):
    return [blockpages.render(page_type, rng, host, country).body
            for _ in range(n)]


@pytest.fixture
def background():
    return [generate_page(f"bg{i}.com", "Business", seed=2)[:6000]
            for i in range(5)]


class TestClusterOutliers:
    def test_same_template_clusters_together(self, rng):
        bodies = _bodies(rng, blockpages.AKAMAI_BLOCK, 8)
        result = cluster_outliers(bodies)
        assert len(set(result.labels)) == 1

    def test_different_templates_separate(self, rng):
        bodies = (_bodies(rng, blockpages.AKAMAI_BLOCK, 5)
                  + _bodies(rng, blockpages.CLOUDFRONT_BLOCK, 5))
        result = cluster_outliers(bodies)
        assert len(set(result.labels)) == 2
        assert result.labels[0] == result.labels[4]
        assert result.labels[5] == result.labels[9]


class TestExtractSignature:
    def test_markers_in_all_members(self, rng, background):
        members = _bodies(rng, blockpages.CLOUDFRONT_BLOCK, 6)
        markers = extract_signature(members, background)
        assert markers
        from repro.textutil.htmltext import extract_text
        for marker in markers:
            for member in members:
                assert marker in extract_text(member).lower()

    def test_markers_absent_from_background(self, rng, background):
        members = _bodies(rng, blockpages.APPENGINE_BLOCK, 4)
        markers = extract_signature(members, background)
        from repro.textutil.htmltext import extract_text
        for marker in markers:
            for doc in background:
                assert marker not in extract_text(doc).lower()

    def test_markers_avoid_instance_ids(self, rng, background):
        # Ray IDs differ per instance, so they can't be common to all.
        members = _bodies(rng, blockpages.CLOUDFLARE_BLOCK, 6)
        markers = extract_signature(members, background)
        assert markers
        fresh = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng,
                                  "h.com", "IR").body
        from repro.textutil.htmltext import extract_text
        fresh_text = extract_text(fresh).lower()
        assert all(m in fresh_text for m in markers)

    def test_empty_members(self, background):
        assert extract_signature([], background) == ()


class TestLabelCluster:
    def test_known_page_labelled(self, rng):
        body = blockpages.render(blockpages.INCAPSULA_BLOCK, rng,
                                 "h.com", "IR").body
        assert label_cluster(body) == blockpages.INCAPSULA_BLOCK

    def test_unknown_page_unlabelled(self):
        assert label_cluster("<html><body>Random short page</body></html>") is None


class TestDiscover:
    def test_end_to_end(self, rng, background):
        bodies = (_bodies(rng, blockpages.CLOUDFLARE_BLOCK, 6)
                  + _bodies(rng, blockpages.AKAMAI_BLOCK, 4)
                  + ["<html><body>junk page</body></html>"] * 3)
        clusters = discover(bodies, background)
        labelled = {c.page_type for c in clusters if c.page_type}
        assert blockpages.CLOUDFLARE_BLOCK in labelled
        assert blockpages.AKAMAI_BLOCK in labelled

    def test_largest_first_ordering(self, rng, background):
        bodies = (_bodies(rng, blockpages.CLOUDFLARE_BLOCK, 8)
                  + _bodies(rng, blockpages.SOASTA_BLOCK, 2))
        clusters = discover(bodies, background)
        assert clusters[0].size >= clusters[-1].size

    def test_min_cluster_size(self, rng, background):
        bodies = (_bodies(rng, blockpages.CLOUDFLARE_BLOCK, 5)
                  + _bodies(rng, blockpages.VARNISH_403, 1))
        clusters = discover(bodies, background, min_cluster_size=3)
        assert all(c.size >= 3 for c in clusters)

    def test_discovered_fingerprints_match_fresh_instances(self, rng, background):
        bodies = _bodies(rng, blockpages.CLOUDFRONT_BLOCK, 6)
        clusters = discover(bodies, background)
        registry = registry_from_discovery(clusters,
                                           base=FingerprintRegistry(fingerprints=()))
        fresh = blockpages.render(blockpages.CLOUDFRONT_BLOCK, rng,
                                  "new-host.org", "SY").body
        # Discovered markers are plain-text n-grams; match against the
        # extracted text of the fresh page.
        from repro.textutil.htmltext import extract_text
        assert registry.match(extract_text(fresh).lower()) == \
            blockpages.CLOUDFRONT_BLOCK


class TestRegistryFromDiscovery:
    def test_base_preserved(self, rng, background):
        clusters = discover(_bodies(rng, blockpages.BAIDU_BLOCK, 4), background)
        base = FingerprintRegistry.default()
        merged = registry_from_discovery(clusters, base=base)
        assert set(merged.page_types()) == set(base.page_types())

    def test_unlabelled_skipped(self, background):
        clusters = discover(["<html><body>mystery</body></html>"] * 3,
                            background)
        registry = registry_from_discovery(
            clusters, base=FingerprintRegistry(fingerprints=()))
        assert len(registry) == 0
