"""Tests for the cross-seed stability comparison."""

from repro.analysis.compare import StabilityReport, compare_findings, numeric_drift


def _findings(appengine_rate):
    return {
        "top10k.appengine_rate": appengine_rate,
        "top10k.cloudflare_rate": 0.03,
        "top10k.cloudfront_rate": 0.015,
        "top10k.gt_precision": 1.0,
    }


class TestCompareFindings:
    def test_stable_across_seeds(self):
        report = compare_findings({1: _findings(0.4), 2: _findings(0.35)})
        assert report.seeds == [1, 2]
        assert report.stability_rate() == 1.0
        assert not report.unstable_checks()

    def test_unstable_check_detected(self):
        report = compare_findings({1: _findings(0.4), 2: _findings(0.001)})
        assert report.unstable_checks()
        assert report.stability_rate() < 1.0

    def test_stable_checks_listed(self):
        report = compare_findings({1: _findings(0.4)})
        assert "top10k: ground-truth precision high" in report.stable_checks()

    def test_empty(self):
        assert StabilityReport().stability_rate() == 1.0


class TestNumericDrift:
    def test_spread_computed(self):
        drift = numeric_drift(
            {1: {"x": 0.40}, 2: {"x": 0.50}}, keys=["x"])
        assert drift["x"]["min"] == 0.40
        assert drift["x"]["max"] == 0.50
        assert drift["x"]["spread"] == (0.50 - 0.40) / 0.50

    def test_missing_and_non_numeric_skipped(self):
        drift = numeric_drift(
            {1: {"x": ["not", "numeric"]}, 2: {}}, keys=["x", "y"])
        assert drift == {}
