"""Unit tests for the staged-run layer: codecs, artifact store, runner."""

from __future__ import annotations

from collections import Counter

import pytest

from repro.core.consistency import DomainConsistency
from repro.core.discovery import DiscoveredCluster
from repro.core.fingerprints import Fingerprint, FingerprintRegistry
from repro.core.identify import CDNPopulation
from repro.core.lengths import Outlier
from repro.core.resample import ConfirmedBlock
from repro.lumscan.records import Sample, ScanDataset
from repro.run import (
    KIND_DATASET,
    ArtifactSpec,
    ArtifactStore,
    RunContext,
    Stage,
    StudyRunner,
    decode_artifact,
    encode_artifact,
    run_fingerprint,
)


def _roundtrip(value):
    import json
    encoded = encode_artifact(value)
    # Must survive an actual JSON round trip, not just the tagging.
    return decode_artifact(json.loads(json.dumps(encoded)))


class TestCodecs:
    def test_scalars(self):
        for value in (None, True, 0, -3, 0.25, 1e-17, "text", ""):
            assert _roundtrip(value) == value

    def test_float_exact(self):
        value = 0.1 + 0.2  # not representable as a short decimal
        assert _roundtrip(value) == value

    def test_tuple_vs_list_distinguished(self):
        assert _roundtrip((1, 2)) == (1, 2)
        assert _roundtrip([1, 2]) == [1, 2]
        assert _roundtrip([("a", "b"), ("c", "d")]) == [("a", "b"),
                                                        ("c", "d")]

    def test_counter_preserves_insertion_order(self):
        """Counter.most_common breaks ties by insertion order; the codec
        must not silently re-sort it."""
        counter = Counter()
        counter["zebra"] = 2
        counter["apple"] = 2
        restored = _roundtrip(counter)
        assert isinstance(restored, Counter)
        assert restored.most_common() == counter.most_common()

    def test_set_restores(self):
        assert _roundtrip({"b", "a"}) == {"a", "b"}

    def test_tuple_keyed_dict(self):
        value = {("dom.com", "IR"): "akamai-block",
                 ("dom.com", "SY"): "cloudflare-block"}
        assert _roundtrip(value) == value

    def test_dict_preserves_order(self):
        value = {"z": 1, "a": 2}
        assert list(_roundtrip(value)) == ["z", "a"]

    def test_study_dataclasses(self):
        sample = Sample("d.com", "IR", 403, 40, "<html>blocked</html>",
                        None, False)
        values = [
            sample,
            Outlier(index=7, sample=sample, representative=9000,
                    relative_difference=0.92),
            ConfirmedBlock("d.com", "IR", "cloudflare-block", "cloudflare",
                           0.95, 20),
            DiscoveredCluster("cluster-1", 12, "<html>blocked</html>",
                              ("error 1009", "cloudflare"),
                              "cloudflare-block"),
            Fingerprint("custom-block", ("marker a", "marker b"), 42),
            DomainConsistency("d.com", "akamai-block",
                              {"IR": 1.0, "US": 0.0}, 12),
        ]
        for value in values:
            assert _roundtrip(value) == value

    def test_registry(self):
        registry = FingerprintRegistry.default().with_fingerprint(
            Fingerprint("custom-block", ("unique marker",), 99))
        restored = _roundtrip(registry)
        assert list(restored) == list(registry)

    def test_population(self):
        population = CDNPopulation(tested=5)
        population.add("cloudflare", "a.com")
        population.add("akamai", "a.com")
        population.add("akamai", "b.com")
        restored = _roundtrip(population)
        assert restored.tested == 5
        assert restored.customers == population.customers

    def test_unknown_type_rejected(self):
        with pytest.raises(TypeError):
            encode_artifact(object())

    def test_unknown_tag_rejected(self):
        with pytest.raises(ValueError):
            decode_artifact({"__repro__": "no-such-tag"})


class TestFingerprint:
    def test_stable(self):
        a = run_fingerprint({"seed": 1}, {"n": 10}, "top10k", "scan")
        b = run_fingerprint({"seed": 1}, {"n": 10}, "top10k", "scan")
        assert a == b

    def test_sensitive_to_every_input(self):
        base = run_fingerprint({"seed": 1}, {"n": 10}, "top10k", "scan")
        assert run_fingerprint({"seed": 2}, {"n": 10},
                               "top10k", "scan") != base
        assert run_fingerprint({"seed": 1}, {"n": 11},
                               "top10k", "scan") != base
        assert run_fingerprint({"seed": 1}, {"n": 10},
                               "top1m", "scan") != base
        assert run_fingerprint({"seed": 1}, {"n": 10},
                               "top10k", "confirm") != base
        assert run_fingerprint({"seed": 1}, {"n": 10},
                               "top10k", "scan", salt="x") != base


def _dataset() -> ScanDataset:
    data = ScanDataset()
    data.append("a.com", "US", 200, 9_000, None)
    data.append("a.com", "IR", 403, 480, "<html>block</html>")
    data.append("b.com", "SY", -1, 0, None, error="timeout")
    return data


_STAGE = Stage("scan", (ArtifactSpec("initial", KIND_DATASET),
                        ArtifactSpec("notes")),
               lambda ctx: {"initial": _dataset(), "notes": ["n1", "n2"]})


def _store(tmp_path, study_config=None, world_config=None) -> ArtifactStore:
    return ArtifactStore(str(tmp_path), "study",
                         study_config or {"seed": 1},
                         world_config or {"n": 10})


class TestArtifactStore:
    def test_save_then_load_roundtrip(self, tmp_path):
        store = _store(tmp_path)
        artifacts = {"initial": _dataset(), "notes": ["n1", "n2"]}
        store.save_stage(_STAGE, artifacts, probes=9, seconds=0.5)
        manifest = store.manifest(_STAGE)
        assert manifest is not None
        assert manifest["stats"] == {"probes": 9, "seconds": 0.5}
        loaded = store.load_stage(_STAGE)
        assert loaded["notes"] == ["n1", "n2"]
        assert [loaded["initial"].row(i) for i in range(3)] \
            == [artifacts["initial"].row(i) for i in range(3)]

    def test_missing_checkpoint(self, tmp_path):
        store = _store(tmp_path)
        assert store.manifest(_STAGE) is None
        with pytest.raises(FileNotFoundError):
            store.load_stage(_STAGE)

    def test_fingerprint_mismatch_invalidates(self, tmp_path):
        _store(tmp_path).save_stage(
            _STAGE, {"initial": _dataset(), "notes": []})
        other = _store(tmp_path, study_config={"seed": 2})
        assert other.manifest(_STAGE) is None

    def test_missing_artifact_file_invalidates(self, tmp_path):
        store = _store(tmp_path)
        store.save_stage(_STAGE, {"initial": _dataset(), "notes": []})
        (tmp_path / "study" / "scan.initial.lshd").unlink()
        assert store.manifest(_STAGE) is None

    def test_invalidate_drops_manifest_only(self, tmp_path):
        store = _store(tmp_path)
        store.save_stage(_STAGE, {"initial": _dataset(), "notes": []})
        store.invalidate([_STAGE])
        assert store.manifest(_STAGE) is None
        # Artifact files survive — only completion is revoked.
        assert (tmp_path / "study" / "scan.initial.lshd").exists()

    def test_invalidate_can_remove_artifacts(self, tmp_path):
        store = _store(tmp_path)
        store.save_stage(_STAGE, {"initial": _dataset(), "notes": []})
        store.invalidate([_STAGE], remove_artifacts=True)
        assert store.manifest(_STAGE) is None
        assert not (tmp_path / "study" / "scan.initial.lshd").exists()
        assert not (tmp_path / "study" / "scan.notes.json").exists()

    def test_default_format_is_mmapped_lshd(self, tmp_path):
        store = _store(tmp_path)
        store.save_stage(_STAGE, {"initial": _dataset(), "notes": []})
        loaded = store.load_stage(_STAGE)["initial"]
        assert loaded.is_mapped
        assert [loaded.row(i) for i in range(3)] \
            == [_dataset().row(i) for i in range(3)]

    def test_jsonl_format_mode(self, tmp_path):
        store = ArtifactStore(str(tmp_path), "study", {"seed": 1}, {"n": 1},
                              dataset_format="jsonl")
        store.save_stage(_STAGE, {"initial": _dataset(), "notes": []})
        assert (tmp_path / "study" / "scan.initial.jsonl").exists()
        assert store.load_stage(_STAGE)["initial"].row(1) \
            == _dataset().row(1)

    def test_cross_format_resume(self, tmp_path):
        # A store in one format reads checkpoints written under another:
        # the manifest records the actual filename and loads sniff bytes.
        old = ArtifactStore(str(tmp_path), "study", {"seed": 1}, {"n": 10},
                            dataset_format="jsonl.gz")
        old.save_stage(_STAGE, {"initial": _dataset(), "notes": ["n1"]})
        new = _store(tmp_path)
        assert new.manifest(_STAGE) is not None
        loaded = new.load_stage(_STAGE)["initial"]
        assert not loaded.is_mapped
        assert loaded.row(2) == _dataset().row(2)

    def test_bad_dataset_format_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            ArtifactStore(str(tmp_path), "study", {}, {},
                          dataset_format="csv")

    def test_dataset_type_enforced(self, tmp_path):
        with pytest.raises(TypeError):
            _store(tmp_path).save_stage(
                _STAGE, {"initial": ["not a dataset"], "notes": []})


def _context(**extras) -> RunContext:
    return RunContext(world=None, config={"seed": 1}, extras=extras)


class TestStudyRunner:
    def test_duplicate_stage_names_rejected(self):
        stage = Stage("dup", (ArtifactSpec("x"),), lambda ctx: {"x": 1})
        with pytest.raises(ValueError):
            StudyRunner("study", [stage, stage])

    def test_runs_stages_in_order_and_threads_artifacts(self):
        stages = [
            Stage("one", (ArtifactSpec("a"),), lambda ctx: {"a": 2}),
            Stage("two", (ArtifactSpec("b"),),
                  lambda ctx: {"b": ctx.artifact("a") * 10}),
        ]
        ctx = _context()
        StudyRunner("study", stages).run(ctx)
        assert ctx.artifact("b") == 20
        assert [s.stage for s in ctx.stats] == ["one", "two"]
        assert not any(s.cache_hit for s in ctx.stats)

    def test_missing_declared_output_raises(self):
        stage = Stage("bad", (ArtifactSpec("present"),
                              ArtifactSpec("absent")),
                      lambda ctx: {"present": 1})
        with pytest.raises(RuntimeError, match="absent"):
            StudyRunner("study", [stage]).run(_context())

    def test_undeclared_artifact_access_raises(self):
        ctx = _context()
        with pytest.raises(KeyError):
            ctx.artifact("nope")

    def test_resume_skips_completed_stages(self, tmp_path):
        calls = []

        def make(name, value):
            def run(ctx):
                calls.append(name)
                return {name: value}
            return Stage(name, (ArtifactSpec(name),), run)

        stages = [make("a", 1), make("b", 2)]
        store = _store(tmp_path)
        runner = StudyRunner("study", stages, store=store)
        runner.run(_context())
        assert calls == ["a", "b"]

        store.invalidate([stages[1]])
        resumed = StudyRunner("study", stages, store=store, resume=True)
        ctx = _context()
        resumed.run(ctx)
        assert calls == ["a", "b", "b"]   # "a" loaded, "b" re-ran
        assert [s.cache_hit for s in ctx.stats] == [True, False]
        assert ctx.artifact("a") == 1 and ctx.artifact("b") == 2

    def test_resume_without_store_executes_everything(self):
        calls = []
        stage = Stage("s", (ArtifactSpec("s"),),
                      lambda ctx: calls.append("s") or {"s": 1})
        StudyRunner("study", [stage], resume=True).run(_context())
        assert calls == ["s"]

    def test_probe_counter_delta(self):
        counter = {"n": 0}

        def probe(ctx):
            counter["n"] += 7
            return {"x": 1}

        ctx = RunContext(world=None, config={}, extras={},
                         probe_counter=lambda: counter["n"])
        StudyRunner("study",
                    [Stage("x", (ArtifactSpec("x"),), probe)]).run(ctx)
        assert ctx.stats[0].probes == 7
