"""Tests for the full Firewall Access Rules engine and ASN substrate."""

import pytest

from repro.datasets.firewall_rules import (
    FirewallRule,
    ZoneRuleSet,
    evaluate_visitor,
    rules_from_geopolicy,
)
from repro.netsim.asn import ASRecord, ASRegistry
from repro.netsim.ip import AddressAllocator, Netblock


class TestFirewallRule:
    def test_validation(self):
        with pytest.raises(ValueError):
            FirewallRule(action="nuke", scope="country", target="IR")
        with pytest.raises(ValueError):
            FirewallRule(action="block", scope="continent", target="EU")

    def test_country_match(self):
        rule = FirewallRule(action="block", scope="country", target="IR")
        assert rule.matches("1.2.3.4", "IR", None)
        assert not rule.matches("1.2.3.4", "US", None)
        assert not rule.matches("1.2.3.4", None, None)

    def test_ip_match(self):
        rule = FirewallRule(action="block", scope="ip", target="1.2.3.4")
        assert rule.matches("1.2.3.4", "US", 64512)
        assert not rule.matches("1.2.3.5", "US", 64512)

    def test_asn_match_with_and_without_prefix(self):
        for target in ("AS64512", "64512", "as64512"):
            rule = FirewallRule(action="challenge", scope="asn", target=target)
            assert rule.matches("1.1.1.1", None, 64512)
            assert not rule.matches("1.1.1.1", None, 64513)


class TestZoneRuleSet:
    def test_country_block(self):
        rules = ZoneRuleSet()
        rules.add("block", "country", "IR")
        assert rules.evaluate("9.9.9.9", country="IR") == "block"
        assert rules.evaluate("9.9.9.9", country="US") is None

    def test_whitelist_beats_block_same_scope(self):
        rules = ZoneRuleSet()
        rules.add("block", "country", "IR")
        rules.add("whitelist", "country", "IR")
        assert rules.evaluate("9.9.9.9", country="IR") is None

    def test_ip_whitelist_escapes_country_block(self):
        # The classic "block country X but whitelist our office IP".
        rules = ZoneRuleSet()
        rules.add("block", "country", "IR")
        rules.add("whitelist", "ip", "10.1.0.5")
        assert rules.evaluate("10.1.0.5", country="IR") is None
        assert rules.evaluate("10.1.0.6", country="IR") == "block"

    def test_asn_more_specific_than_country(self):
        rules = ZoneRuleSet()
        rules.add("challenge", "country", "RU")
        rules.add("block", "asn", "AS64600")
        assert rules.evaluate("7.7.7.7", country="RU", asn=64600) == "block"
        assert rules.evaluate("7.7.7.7", country="RU", asn=64601) == "challenge"

    def test_block_beats_challenge_same_scope(self):
        rules = ZoneRuleSet()
        rules.add("challenge", "country", "CN")
        rules.add("block", "country", "CN")
        assert rules.evaluate("8.8.8.8", country="CN") == "block"

    def test_no_rules(self):
        assert ZoneRuleSet().evaluate("1.1.1.1", country="US") is None

    def test_blocked_countries(self):
        rules = ZoneRuleSet()
        rules.add("block", "country", "IR")
        rules.add("block", "country", "SY")
        rules.add("challenge", "country", "CN")
        assert rules.blocked_countries() == ["IR", "SY"]


class TestGeoPolicyBridge:
    def test_round_trip(self, nano_world):
        name, policy = next(
            (n, p) for n, p in nano_world.policies.items()
            if p.is_geoblocking and p.blocked_countries)
        rules = rules_from_geopolicy(policy)
        for country in policy.blocked_countries:
            assert rules.evaluate("1.1.1.1", country=country) == "block"
        assert rules.evaluate("1.1.1.1", country="ZZ") is None

    def test_challenge_bridge(self):
        from repro.websim import blockpages
        from repro.websim.policies import GeoPolicy
        policy = GeoPolicy(enforcer="cloudflare",
                           block_page=blockpages.CLOUDFLARE_BLOCK,
                           challenge_countries=frozenset({"CN"}),
                           challenge_page=blockpages.CLOUDFLARE_JS)
        rules = rules_from_geopolicy(policy)
        assert rules.evaluate("1.1.1.1", country="CN") == "js_challenge"


class TestASRegistry:
    def test_register_and_lookup(self):
        registry = ASRegistry()
        registry.register_as(ASRecord(asn=64512, name="TEST", country="US"))
        registry.assign_block(Netblock(cidr="10.0.0.0/16", owner="x"), 64512)
        record = registry.lookup("10.0.1.2")
        assert record.asn == 64512
        assert registry.lookup("99.0.0.1") is None

    def test_duplicate_asn_rejected(self):
        registry = ASRegistry()
        registry.register_as(ASRecord(asn=1, name="A"))
        with pytest.raises(ValueError):
            registry.register_as(ASRecord(asn=1, name="B"))

    def test_assign_unknown_asn(self):
        registry = ASRegistry()
        with pytest.raises(KeyError):
            registry.assign_block(Netblock(cidr="10.0.0.0/16", owner="x"), 9)

    def test_build_for_world(self, nano_world):
        registry = ASRegistry.build_for_world(nano_world.allocator,
                                              seed=nano_world.config.seed)
        # Every residential address resolves to an ISP AS of its country.
        for code in ("US", "IR", "CN"):
            address = nano_world.residential_address(code)
            record = registry.lookup(address)
            assert record is not None
            assert record.kind == "isp"
            assert record.country == code

    def test_cdn_edges_have_cdn_ases(self, nano_world):
        registry = ASRegistry.build_for_world(nano_world.allocator,
                                              seed=nano_world.config.seed)
        cdn = registry.ases(kind="cdn")
        assert cdn
        assert all(r.country is None for r in cdn)

    def test_deterministic(self, nano_world):
        a = ASRegistry.build_for_world(nano_world.allocator, seed=1)
        b = ASRegistry.build_for_world(nano_world.allocator, seed=1)
        assert [r.asn for r in a.ases()] == [r.asn for r in b.ases()]


class TestVisitorEvaluation:
    def test_evaluate_visitor_full_stack(self, nano_world):
        asn_registry = ASRegistry.build_for_world(
            nano_world.allocator, seed=nano_world.config.seed)
        ruleset = ZoneRuleSet()
        ruleset.add("block", "country", "IR")
        ir_ip = nano_world.residential_address("IR")
        us_ip = nano_world.residential_address("US")
        ir_action = evaluate_visitor(ruleset, ir_ip, nano_world.geoip,
                                     asn_registry)
        us_action = evaluate_visitor(ruleset, us_ip, nano_world.geoip,
                                     asn_registry)
        # GeoIP error can flip the odd address; the common case must hold.
        assert ir_action in ("block", None)
        assert us_action in (None, "block")

    def test_asn_rule_via_registry(self, nano_world):
        asn_registry = ASRegistry.build_for_world(
            nano_world.allocator, seed=nano_world.config.seed)
        ir_ip = nano_world.residential_address("IR")
        record = asn_registry.lookup(ir_ip)
        ruleset = ZoneRuleSet()
        ruleset.add("block", "asn", f"AS{record.asn}")
        assert evaluate_visitor(ruleset, ir_ip, nano_world.geoip,
                                asn_registry) == "block"
