"""Tests for the Luminati proxy network simulator."""

import pytest

from repro.netsim.errors import NoExitAvailable
from repro.proxynet.luminati import LuminatiClient


@pytest.fixture
def luminati(nano_world):
    # Function-scoped: tests here consume stochastic state.
    return LuminatiClient(nano_world)


def _geoblocked_url(world):
    for name, policy in world.policies.items():
        domain = world.population.get(name)
        if policy.is_geoblocking and not domain.dead and not domain.redirect_loop:
            return f"http://{name}/", policy
    pytest.skip("no geoblocked domain")


class TestExits:
    def test_countries_exclude_north_korea(self, luminati):
        assert "KP" not in luminati.countries()
        assert "US" in luminati.countries()

    def test_exit_pool_size(self, luminati):
        assert len(luminati.exits("US")) == 400

    def test_exit_pool_deterministic(self, nano_world):
        a = LuminatiClient(nano_world).exits("IR")
        b = LuminatiClient(nano_world).exits("IR")
        assert [e.ip for e in a] == [e.ip for e in b]

    def test_exits_geolocate_to_country(self, luminati, nano_world):
        for exit_node in luminati.exits("BR")[:25]:
            assert nano_world.geoip.true_country(exit_node.ip) == "BR"

    def test_no_exits_raises(self, luminati):
        with pytest.raises(NoExitAvailable):
            luminati.exits("KP")

    def test_some_exits_firewalled(self, luminati):
        pool = luminati.exits("US")
        firewalled = [e for e in pool if e.firewalled]
        assert 0 < len(firewalled) < len(pool) * 0.15

    def test_verify_connectivity(self, luminati):
        node = luminati.pick_exit("US")
        echo = luminati.verify_connectivity(node)
        assert echo["ip"] == node.ip
        assert echo["country"]


class TestRequests:
    def test_successful_probe(self, luminati, nano_world):
        domain = next(d for d in nano_world.population
                      if not d.dead and not d.redirect_loop
                      and d.name not in nano_world.policies
                      and not d.censored_in and not d.bot_protection)
        for _ in range(5):
            result = luminati.request(f"http://{domain.name}/", "US")
            if result.ok:
                assert result.response.status == 200
                assert result.exit_ip is not None
                assert result.geo_country is not None
                return
        pytest.fail("five consecutive proxy failures in a reliable country")

    def test_geoblocked_probe_sees_block_page(self, luminati, nano_world):
        url, policy = _geoblocked_url(nano_world)
        country = next(c for c in sorted(policy.blocked_countries)
                       if c in luminati.countries())
        saw_403 = False
        for _ in range(8):
            result = luminati.request(url, country)
            if result.ok and result.response.status == 403:
                saw_403 = True
                break
        assert saw_403

    def test_no_exit_country(self, luminati, nano_world):
        domain = next(iter(nano_world.population))
        result = luminati.request(f"http://{domain.name}/", "KP")
        assert not result.ok
        assert result.error == "no-exit"

    def test_request_count_increments(self, luminati, nano_world):
        domain = next(iter(nano_world.population))
        before = luminati.request_count
        luminati.request(f"http://{domain.name}/", "US")
        assert luminati.request_count == before + 1

    def test_chain_recorded_for_redirects(self, luminati, nano_world):
        domain = next(d for d in nano_world.population
                      if d.https_redirect and not d.dead and not d.redirect_loop
                      and d.name not in nano_world.policies and not d.censored_in
                      and not d.bot_protection)
        for _ in range(6):
            result = luminati.request(f"http://{domain.name}/", "US")
            if result.ok:
                assert len(result.chain) >= 1
                assert result.chain[0].status == 301
                return
        pytest.fail("no successful probe")

    def test_redirect_loop_fails(self, luminati, nano_world):
        domain = next(d for d in nano_world.population if d.redirect_loop)
        result = luminati.request(f"http://{domain.name}/", "US")
        if result.ok:
            pytest.fail("redirect loop should not produce a response")
        assert result.error in ("redirect-loop", "timeout")


class TestNoiseModel:
    def test_flaky_pairs_exist(self, nano_world):
        luminati = LuminatiClient(nano_world)
        domains = [d.name for d in nano_world.population
                   if not d.dead and not d.redirect_loop][:60]
        failures = 0
        total = 0
        for name in domains:
            for _ in range(3):
                total += 1
                if not luminati.request(f"http://{name}/", "IR").ok:
                    failures += 1
        # Iran reliability 0.93 -> flaky-pair prop ~9.7%; expect some failures
        # but far from a majority.
        assert 0 < failures < total * 0.4

    def test_interference_marks_results(self, nano_world):
        luminati = LuminatiClient(nano_world)
        domain = next(d for d in nano_world.population
                      if not d.dead and not d.redirect_loop
                      and d.name not in nano_world.policies
                      and not d.censored_in)
        interfered = 0
        for exit_node in luminati.exits("US"):
            if not exit_node.firewalled:
                continue
            result = luminati.request(f"http://{domain.name}/", "US",
                                      exit_node=exit_node)
            if result.interfered:
                interfered += 1
                assert result.response.status == 403
        # firewalled exits filter ~5% of domains each; with ~12 firewalled
        # exits this may be zero — the flag just must never appear on
        # non-firewalled paths (checked implicitly by construction).
        assert interfered >= 0
