"""Tests for dataset persistence: LSHD segments, JSONL, and sniffing."""

import os

import pytest

from repro.lumscan.records import NO_RESPONSE, ScanDataset
from repro.lumscan.serialize import (
    dump_dataset,
    dump_dataset_lshd,
    load_dataset,
    sniff_format,
)

FIXTURES = os.path.join(os.path.dirname(__file__), "fixtures")


def _dataset():
    data = ScanDataset()
    data.append("a.com", "US", 200, 9_000, None)
    data.append("a.com", "IR", 403, 480, "<html>block page</html>")
    data.append("b.com", "SY", NO_RESPONSE, 0, None, error="timeout")
    data.append("c.com", "US", 403, 50, "fw", interfered=True)
    return data


class TestRoundtrip:
    def test_roundtrip_preserves_records(self, tmp_path):
        original = _dataset()
        path = tmp_path / "scan.jsonl"
        written = dump_dataset(original, path)
        assert written == len(original)
        loaded = load_dataset(path)
        assert len(loaded) == len(original)
        for i in range(len(original)):
            assert loaded.row(i) == original.row(i)

    def test_roundtrip_preserves_pairs(self, tmp_path):
        original = _dataset()
        path = tmp_path / "scan.jsonl"
        dump_dataset(original, path)
        loaded = load_dataset(path)
        assert ([(d, c) for d, c, _ in loaded.pairs()]
                == [(d, c) for d, c, _ in original.pairs()])

    def test_roundtrip_run_structure(self, tmp_path):
        """Runs survive the round trip even though JSON-decoded strings
        are fresh objects (regression: run detection once compared
        domain/country with ``is``, which only worked for interned
        literals and shattered loaded datasets into length-1 runs)."""
        original = ScanDataset()
        for _ in range(3):
            original.append("run.example", "US", 200, 100, None)
        for _ in range(2):
            original.append("run.example", "IR", 403, 50, "blocked")
        path = tmp_path / "scan.jsonl"
        dump_dataset(original, path)
        loaded = load_dataset(path)
        runs = [(d, c, len(s)) for d, c, s in loaded.pairs()]
        assert runs == [("run.example", "US", 3), ("run.example", "IR", 2)]

    def test_empty_dataset(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        assert dump_dataset(ScanDataset(), path) == 0
        assert len(load_dataset(path)) == 0

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "scan.jsonl"
        dump_dataset(_dataset(), path)
        content = path.read_text()
        path.write_text(content.replace("\n", "\n\n"))
        assert len(load_dataset(path)) == 4


class TestErrors:
    def test_invalid_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{not json}\n")
        with pytest.raises(ValueError, match="invalid JSON"):
            load_dataset(path)

    def test_unknown_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"domain":"a.com","country":"US","status":200,'
                        '"length":1,"surprise":true}\n')
        with pytest.raises(ValueError, match="unknown fields"):
            load_dataset(path)

    def test_missing_field(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"domain":"a.com","country":"US"}\n')
        with pytest.raises(ValueError, match="missing field"):
            load_dataset(path)


class TestGzip:
    def test_gz_roundtrip_preserves_records(self, tmp_path):
        original = _dataset()
        path = tmp_path / "scan.jsonl.gz"
        written = dump_dataset(original, path)
        assert written == len(original)
        loaded = load_dataset(path)
        assert len(loaded) == len(original)
        for i in range(len(original)):
            assert loaded.row(i) == original.row(i)

    def test_gz_file_is_actually_compressed(self, tmp_path):
        path = tmp_path / "scan.jsonl.gz"
        dump_dataset(_dataset(), path)
        with open(path, "rb") as handle:
            assert handle.read(2) == b"\x1f\x8b"

    def test_gz_bytes_are_deterministic(self, tmp_path):
        """mtime=0 keeps the byte stream a pure function of the content —
        checkpoint comparison and resume tests rely on this."""
        a = tmp_path / "a.jsonl.gz"
        b = tmp_path / "b.jsonl.gz"
        dump_dataset(_dataset(), a)
        dump_dataset(_dataset(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_gz_and_plain_agree(self, tmp_path):
        original = _dataset()
        plain = tmp_path / "scan.jsonl"
        gz = tmp_path / "scan.jsonl.gz"
        dump_dataset(original, plain)
        dump_dataset(original, gz)
        import gzip
        assert gzip.open(gz, "rt").read() == plain.read_text()

    def test_empty_gz_dataset(self, tmp_path):
        path = tmp_path / "empty.jsonl.gz"
        assert dump_dataset(ScanDataset(), path) == 0
        assert len(load_dataset(path)) == 0


class TestLSHD:
    def test_mapped_roundtrip_preserves_records(self, tmp_path):
        original = _dataset()
        path = tmp_path / "scan.lshd"
        assert dump_dataset_lshd(original, path) == len(original)
        loaded = load_dataset(path)
        try:
            assert loaded.is_mapped
            for i in range(len(original)):
                assert loaded.row(i) == original.row(i)
        finally:
            loaded.close()

    def test_materialized_load_copies_and_releases(self, tmp_path):
        path = tmp_path / "scan.lshd"
        dump_dataset_lshd(_dataset(), path)
        loaded = load_dataset(path, mmap=False)
        assert not loaded.is_mapped
        os.remove(path)  # no mapping holds the file
        assert loaded.row(3) == _dataset().row(3)
        # A materialized dataset stays growable like any other.
        loaded.append("d.com", "DE", 200, 1, None)
        assert len(loaded) == 5

    def test_lshd_bytes_are_deterministic(self, tmp_path):
        a, b = tmp_path / "a.lshd", tmp_path / "b.lshd"
        dump_dataset_lshd(_dataset(), a)
        dump_dataset_lshd(_dataset(), b)
        assert a.read_bytes() == b.read_bytes()

    def test_empty_lshd_dataset(self, tmp_path):
        path = tmp_path / "empty.lshd"
        assert dump_dataset_lshd(ScanDataset(), path) == 0
        data = load_dataset(path)
        try:
            assert len(data) == 0
        finally:
            data.close()

    def test_pairs_and_runs_on_mapped_dataset(self, tmp_path):
        original = ScanDataset()
        for _ in range(3):
            original.append("run.example", "US", 200, 100, None)
        for _ in range(2):
            original.append("run.example", "IR", 403, 50, "blocked")
        path = tmp_path / "runs.lshd"
        dump_dataset_lshd(original, path)
        loaded = load_dataset(path)
        try:
            runs = [(d, c, len(s)) for d, c, s in loaded.pairs()]
            assert runs == [("run.example", "US", 3),
                            ("run.example", "IR", 2)]
        finally:
            loaded.close()


class TestSniffing:
    def test_sniffs_each_format(self, tmp_path):
        dump_dataset(_dataset(), tmp_path / "a")
        dump_dataset(_dataset(), tmp_path / "b.gz")
        dump_dataset_lshd(_dataset(), tmp_path / "c")
        assert sniff_format(tmp_path / "a") == "jsonl"
        assert sniff_format(tmp_path / "b.gz") == "jsonl.gz"
        assert sniff_format(tmp_path / "c") == "lshd"

    def test_extension_is_never_trusted(self, tmp_path):
        # An LSHD segment under a legacy extension still loads as LSHD.
        path = tmp_path / "scan.jsonl.gz"
        dump_dataset_lshd(_dataset(), path)
        loaded = load_dataset(path)
        try:
            assert loaded.is_mapped
            assert loaded.row(0) == _dataset().row(0)
        finally:
            loaded.close()

    def test_legacy_gzip_fixture_still_loads(self):
        # Frozen bytes from the pre-columnar gzip-JSONL writer: the
        # loader must keep reading checkpoints written before LSHD
        # became the default format.
        path = os.path.join(FIXTURES, "legacy_scan.jsonl.gz")
        assert sniff_format(path) == "jsonl.gz"
        loaded = load_dataset(path)
        assert len(loaded) == 4
        for i in range(4):
            assert loaded.row(i) == _dataset().row(i)


class TestAtomicity:
    def test_no_temp_files_left_behind(self, tmp_path):
        dump_dataset(_dataset(), tmp_path / "scan.jsonl")
        dump_dataset(_dataset(), tmp_path / "scan.jsonl.gz")
        dump_dataset_lshd(_dataset(), tmp_path / "scan.lshd")
        leftovers = [p.name for p in tmp_path.iterdir()
                     if ".tmp." in p.name]
        assert leftovers == []

    def test_failed_dump_preserves_existing_file(self, tmp_path):
        """A crash mid-write must leave the previous dataset intact."""
        path = tmp_path / "scan.jsonl"
        dump_dataset(_dataset(), path)
        before = path.read_bytes()

        class Exploding(ScanDataset):
            def __iter__(self):
                yield from super().__iter__()
                raise RuntimeError("simulated crash mid-write")

        bad = Exploding()
        bad.append("x.com", "US", 200, 1, None)
        with pytest.raises(RuntimeError):
            dump_dataset(bad, path)
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()
                if ".tmp." in p.name] == []
