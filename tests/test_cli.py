"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == "tiny"
        assert args.seed == 7
        assert not args.markdown

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "10"])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "6"])

    def test_scale_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "run"])

    def test_validate_subcommand_parses(self):
        args = build_parser().parse_args(["--scale", "nano", "validate"])
        assert args.command == "validate"


class TestCommands:
    def test_top10k_command(self, capsys):
        assert main(["--scale", "nano", "top10k"]) == 0
        out = capsys.readouterr().out
        assert "confirmed instances:" in out

    def test_table_command(self, capsys):
        assert main(["--scale", "nano", "table", "9"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out

    def test_figure_command(self, capsys):
        assert main(["--scale", "nano", "figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_run_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["--scale", "nano", "run", "--markdown",
                     "--no-top1m", "--no-vps", "--no-ooni",
                     "--out", str(out_file)])
        assert code == 0
        content = out_file.read_text()
        assert "### Table 1" in content
