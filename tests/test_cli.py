"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_run_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.scale == "tiny"
        assert args.seed == 7
        assert not args.markdown

    def test_table_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["table", "10"])

    def test_figure_number_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["figure", "6"])

    def test_scale_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--scale", "galactic", "run"])

    def test_validate_subcommand_parses(self):
        args = build_parser().parse_args(["--scale", "nano", "validate"])
        assert args.command == "validate"

    def test_run_storage_defaults(self):
        args = build_parser().parse_args(["run"])
        assert args.merge == "memory"
        assert args.checkpoint_format == "lshd"

    def test_merge_choice_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--merge", "tape"])

    def test_checkpoint_format_validated(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run", "--checkpoint-format", "csv"])

    def test_store_inspect_requires_path(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "inspect"])

    def test_checkpoint_format_accepts_lshm(self):
        args = build_parser().parse_args(
            ["run", "--checkpoint-format", "lshm"])
        assert args.checkpoint_format == "lshm"

    def test_store_append_requires_both_paths(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "append", "only.lshm"])

    def test_store_compact_requires_manifest(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["store", "compact"])


class TestCommands:
    def test_top10k_command(self, capsys):
        assert main(["--scale", "nano", "top10k"]) == 0
        out = capsys.readouterr().out
        assert "confirmed instances:" in out

    def test_table_command(self, capsys):
        assert main(["--scale", "nano", "table", "9"]) == 0
        out = capsys.readouterr().out
        assert "Baseline" in out

    def test_figure_command(self, capsys):
        assert main(["--scale", "nano", "figure", "5"]) == 0
        out = capsys.readouterr().out
        assert "Figure 5" in out

    def test_run_to_file(self, tmp_path, capsys):
        out_file = tmp_path / "report.md"
        code = main(["--scale", "nano", "run", "--markdown",
                     "--no-top1m", "--no-vps", "--no-ooni",
                     "--out", str(out_file)])
        assert code == 0
        content = out_file.read_text()
        assert "### Table 1" in content


class TestStoreInspect:
    def _segment(self, tmp_path):
        from repro.lumscan.records import ScanDataset
        from repro.lumscan.serialize import dump_dataset_lshd

        data = ScanDataset()
        data.append("a.com", "US", 200, 9_000, None)
        data.append("a.com", "IR", 403, 480, "<html>block</html>")
        path = str(tmp_path / "scan.lshd")
        dump_dataset_lshd(data, path)
        return path

    def test_inspect_prints_header(self, tmp_path, capsys):
        path = self._segment(tmp_path)
        assert main(["store", "inspect", path]) == 0
        out = capsys.readouterr().out
        assert "rows:        2" in out
        assert "fingerprint:" in out
        assert "dcodes" in out and "lengths" in out
        assert "bodies" in out and "interfered" in out

    def test_inspect_rejects_non_lshd(self, tmp_path):
        from repro.lumscan.records import ScanDataset
        from repro.lumscan.serialize import dump_dataset

        path = str(tmp_path / "scan.jsonl.gz")
        dump_dataset(ScanDataset(), path)
        with pytest.raises(SystemExit, match="not an LSHD segment"):
            main(["store", "inspect", path])

    def test_inspect_legacy_gzip_is_one_clean_line(self, tmp_path):
        # Satellite contract: a legacy gzip checkpoint exits nonzero with
        # a single-line message, never a traceback.
        from repro.lumscan.records import ScanDataset
        from repro.lumscan.serialize import dump_dataset

        path = str(tmp_path / "legacy.jsonl.gz")
        data = ScanDataset()
        data.append("a.com", "US", 200, 10, None)
        dump_dataset(data, path)
        with pytest.raises(SystemExit) as excinfo:
            main(["store", "inspect", path])
        message = str(excinfo.value)
        assert message.startswith(path)
        assert "jsonl.gz" in message
        assert "\n" not in message

    def test_inspect_rejects_missing_file(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "inspect", str(tmp_path / "nope.lshd")])


class TestStoreManifestCommands:
    def _segment(self, tmp_path, name="part.lshd"):
        from repro.lumscan.records import ScanDataset
        from repro.lumscan.serialize import dump_dataset_lshd

        data = ScanDataset()
        data.append("a.com", "US", 200, 9_000, None)
        data.append("a.com", "IR", 403, 480, "<html>block</html>")
        data.append("b.com", "SY", -1, 0, None, error="timeout")
        path = str(tmp_path / name)
        dump_dataset_lshd(data, path)
        return path

    def test_append_creates_and_grows_manifest(self, tmp_path, capsys):
        manifest = str(tmp_path / "data.lshm")
        segment = self._segment(tmp_path)
        assert main(["store", "append", manifest, segment]) == 0
        out = capsys.readouterr().out
        assert "appended 3 rows" in out
        assert "segments:    1" in out
        assert main(["store", "append", manifest, segment]) == 0
        out = capsys.readouterr().out
        assert "rows:        6" in out
        assert "segments:    2" in out

    def test_inspect_prints_manifest_summary(self, tmp_path, capsys):
        manifest = str(tmp_path / "data.lshm")
        segment = self._segment(tmp_path)
        main(["store", "append", manifest, segment])
        capsys.readouterr()
        assert main(["store", "inspect", manifest]) == 0
        out = capsys.readouterr().out
        assert f"manifest:    {manifest}" in out
        assert "segments:    1" in out
        assert ".seg-" in out

    def test_compact_merges_to_one_segment(self, tmp_path, capsys):
        manifest = str(tmp_path / "data.lshm")
        segment = self._segment(tmp_path)
        main(["store", "append", manifest, segment])
        main(["store", "append", manifest, segment])
        capsys.readouterr()
        assert main(["store", "compact", manifest]) == 0
        out = capsys.readouterr().out
        assert "compacted 2 segments" in out
        assert "rows:        6" in out

    def test_append_rejects_missing_dataset(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "append", str(tmp_path / "data.lshm"),
                  str(tmp_path / "nope.lshd")])

    def test_compact_rejects_missing_manifest(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["store", "compact", str(tmp_path / "nope.lshm")])
