"""Process-parallel scan sharding: byte-identity and plumbing tests.

``ScanEngine(executor="process")`` ships task chunks to worker processes
that each rebuild the scanner from a picklable :class:`ScannerSpec`.  The
contract is the same as the thread pool's: the merged dataset is
identical — same records, same order — to a serial scan, and the parent
scanner's request/fetch counters account for all worker traffic.
"""

import pickle

import pytest

from repro.lumscan.engine import EXECUTORS, ScanEngine, scan_tasks
from repro.lumscan.records import ScanDataset
from repro.lumscan.scanner import Lumscan, ScannerSpec
from repro.proxynet.luminati import LuminatiClient


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _clean_urls(world, n):
    urls = []
    for domain in world.population:
        if not domain.dead and not domain.redirect_loop:
            urls.append(f"http://{domain.name}/")
            if len(urls) == n:
                break
    return urls


class _InlineOnlyScanner:
    """Satisfies Scanner but not SpawnableScanner (no spawn_spec)."""

    def run_task(self, task):  # pragma: no cover - never reached
        raise AssertionError("should fail before running tasks")


class TestExecutorValidation:
    def test_executors_tuple(self):
        assert EXECUTORS == ("thread", "process")

    def test_unknown_executor_rejected(self, nano_luminati):
        with pytest.raises(ValueError):
            ScanEngine(Lumscan(nano_luminati, seed=3), executor="fork")

    def test_non_spawnable_scanner_rejected(self):
        engine = ScanEngine(_InlineOnlyScanner(), workers=2, chunk_size=2,
                            executor="process")
        with pytest.raises(TypeError, match="spawn_spec"):
            engine.scan([f"http://d{i}.example.com/" for i in range(8)],
                        ["US"], samples=1)


class TestScannerSpec:
    def test_spec_pickles_and_rebuilds_identically(self, nano_world):
        scanner = Lumscan(LuminatiClient(nano_world), seed=21)
        spec = scanner.spawn_spec()
        replica = pickle.loads(pickle.dumps(spec)).build()
        urls = _clean_urls(nano_world, 8)
        tasks = scan_tasks(urls, ["US", "IR"], samples=2)
        for task in tasks:
            assert replica.run_task(task) == scanner.run_task(task)

    def test_spec_is_frozen(self, nano_world):
        spec = Lumscan(LuminatiClient(nano_world), seed=21).spawn_spec()
        assert isinstance(spec, ScannerSpec)
        with pytest.raises(AttributeError):
            spec.scanner_seed = 99


class TestProcessSerialDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, nano_world):
        client = LuminatiClient(nano_world)
        urls = _clean_urls(nano_world, 18)
        countries = client.countries()[:5]
        fetches_before = nano_world.fetch_count
        data = Lumscan(client, seed=11).scan(urls, countries, samples=3)
        counts = (client.request_count,
                  nano_world.fetch_count - fetches_before)
        return urls, countries, data, counts

    @pytest.mark.parametrize("workers", [2, 3])
    def test_rows_identical_to_serial(self, nano_world, serial, workers):
        urls, countries, expected, _ = serial
        client = LuminatiClient(nano_world)
        engine = ScanEngine(Lumscan(client, seed=11), workers=workers,
                            chunk_size=16, executor="process")
        data = engine.scan(urls, countries, samples=3)
        assert _rows(data) == _rows(expected)

    def test_worker_traffic_absorbed(self, nano_world, serial):
        urls, countries, _, (serial_requests, serial_fetches) = serial
        client = LuminatiClient(nano_world)
        fetches_before = nano_world.fetch_count
        engine = ScanEngine(Lumscan(client, seed=11), workers=2,
                            chunk_size=16, executor="process")
        engine.scan(urls, countries, samples=3)
        assert client.request_count == serial_requests
        assert nano_world.fetch_count - fetches_before == serial_fetches

    def test_resample_identical_to_serial(self, nano_world, serial):
        urls, countries, _, _ = serial
        pairs = [(url.split("//")[1].rstrip("/"), country)
                 for country in countries[:3] for url in urls[:6]]
        client = LuminatiClient(nano_world)
        expected = Lumscan(client, seed=11).resample(pairs, samples=4, epoch=2)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=3, chunk_size=5, executor="process")
        data = engine.resample(pairs, samples=4, epoch=2)
        assert _rows(data) == _rows(expected)

    def test_process_matches_thread_pool(self, nano_world, serial):
        urls, countries, expected, _ = serial
        threaded = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                              workers=4, chunk_size=9,
                              executor="thread").scan(
            urls, countries, samples=3)
        processed = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                               workers=4, chunk_size=9,
                               executor="process").scan(
            urls, countries, samples=3)
        assert _rows(threaded) == _rows(expected)
        assert _rows(processed) == _rows(expected)


class TestDatasetPickle:
    def test_round_trip_preserves_rows(self, nano_luminati):
        data = Lumscan(nano_luminati, seed=8).scan(
            _clean_urls(nano_luminati.world, 10), ["US", "CN"], samples=2)
        clone = pickle.loads(pickle.dumps(data))
        assert _rows(clone) == _rows(data)

    def test_pickle_trims_column_buffers(self, nano_luminati):
        data = Lumscan(nano_luminati, seed=8).scan(
            _clean_urls(nano_luminati.world, 10), ["US"], samples=2)
        state = data.__getstate__()
        for name in ("_dcodes", "_ccodes", "_statuses", "_lengths"):
            assert len(state[name]) == len(data)

    def test_clone_still_appendable(self, nano_luminati):
        data = Lumscan(nano_luminati, seed=8).scan(
            _clean_urls(nano_luminati.world, 6), ["US"], samples=1)
        clone = pickle.loads(pickle.dumps(data))
        before = len(clone)
        clone.append("late.example.com", "BR", 200, 1234, "<html>",
                     interfered=False)
        assert len(clone) == before + 1
        added = clone.row(before)
        assert (added.domain, added.country, added.status, added.length) == \
            ("late.example.com", "BR", 200, 1234)
