"""Process-parallel scan sharding: byte-identity and plumbing tests.

``ScanEngine(executor="process")`` ships task chunks to worker processes
that each rebuild the scanner from a picklable :class:`ScannerSpec`.  The
contract is the same as the thread pool's: the merged dataset is
identical — same records, same order — to a serial scan, and the parent
scanner's request/fetch counters account for all worker traffic.  The
shard exchange adds two more: the merged bytes stay identical under any
chunk completion order, and no shard segment outlives the scan — not
even when a worker blows up mid-run.
"""

import os
import pickle
import time

import pytest

import repro.lumscan.engine as engine_mod
from repro.lumscan.engine import EXECUTORS, EXCHANGES, ScanEngine, scan_tasks
from repro.lumscan.records import ScanDataset
from repro.lumscan.scanner import Lumscan, ScannerSpec
from repro.lumscan.serialize import dump_dataset
from repro.lumscan.shards import shm_available
from repro.proxynet.luminati import LuminatiClient


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _clean_urls(world, n):
    urls = []
    for domain in world.population:
        if not domain.dead and not domain.redirect_loop:
            urls.append(f"http://{domain.name}/")
            if len(urls) == n:
                break
    return urls


class _InlineOnlyScanner:
    """Satisfies Scanner but not SpawnableScanner (no spawn_spec)."""

    def run_task(self, task):  # pragma: no cover - never reached
        raise AssertionError("should fail before running tasks")


class TestExecutorValidation:
    def test_executors_tuple(self):
        assert EXECUTORS == ("thread", "process")

    def test_unknown_executor_rejected(self, nano_luminati):
        with pytest.raises(ValueError):
            ScanEngine(Lumscan(nano_luminati, seed=3), executor="fork")

    def test_non_spawnable_scanner_rejected(self):
        engine = ScanEngine(_InlineOnlyScanner(), workers=2, chunk_size=2,
                            executor="process")
        with pytest.raises(TypeError, match="spawn_spec"):
            engine.scan([f"http://d{i}.example.com/" for i in range(8)],
                        ["US"], samples=1)


class TestScannerSpec:
    def test_spec_pickles_and_rebuilds_identically(self, nano_world):
        scanner = Lumscan(LuminatiClient(nano_world), seed=21)
        spec = scanner.spawn_spec()
        replica = pickle.loads(pickle.dumps(spec)).build()
        urls = _clean_urls(nano_world, 8)
        tasks = scan_tasks(urls, ["US", "IR"], samples=2)
        for task in tasks:
            assert replica.run_task(task) == scanner.run_task(task)

    def test_spec_is_frozen(self, nano_world):
        spec = Lumscan(LuminatiClient(nano_world), seed=21).spawn_spec()
        assert isinstance(spec, ScannerSpec)
        with pytest.raises(AttributeError):
            spec.scanner_seed = 99


class TestProcessSerialDeterminism:
    @pytest.fixture(scope="class")
    def serial(self, nano_world):
        client = LuminatiClient(nano_world)
        urls = _clean_urls(nano_world, 18)
        countries = client.countries()[:5]
        fetches_before = nano_world.fetch_count
        data = Lumscan(client, seed=11).scan(urls, countries, samples=3)
        counts = (client.request_count,
                  nano_world.fetch_count - fetches_before)
        return urls, countries, data, counts

    @pytest.mark.parametrize("workers", [2, 3])
    def test_rows_identical_to_serial(self, nano_world, serial, workers):
        urls, countries, expected, _ = serial
        client = LuminatiClient(nano_world)
        engine = ScanEngine(Lumscan(client, seed=11), workers=workers,
                            chunk_size=16, executor="process")
        data = engine.scan(urls, countries, samples=3)
        assert _rows(data) == _rows(expected)

    def test_worker_traffic_absorbed(self, nano_world, serial):
        urls, countries, _, (serial_requests, serial_fetches) = serial
        client = LuminatiClient(nano_world)
        fetches_before = nano_world.fetch_count
        engine = ScanEngine(Lumscan(client, seed=11), workers=2,
                            chunk_size=16, executor="process")
        engine.scan(urls, countries, samples=3)
        assert client.request_count == serial_requests
        assert nano_world.fetch_count - fetches_before == serial_fetches

    def test_resample_identical_to_serial(self, nano_world, serial):
        urls, countries, _, _ = serial
        pairs = [(url.split("//")[1].rstrip("/"), country)
                 for country in countries[:3] for url in urls[:6]]
        client = LuminatiClient(nano_world)
        expected = Lumscan(client, seed=11).resample(pairs, samples=4, epoch=2)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=3, chunk_size=5, executor="process")
        data = engine.resample(pairs, samples=4, epoch=2)
        assert _rows(data) == _rows(expected)

    def test_process_matches_thread_pool(self, nano_world, serial):
        urls, countries, expected, _ = serial
        threaded = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                              workers=4, chunk_size=9,
                              executor="thread").scan(
            urls, countries, samples=3)
        processed = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                               workers=4, chunk_size=9,
                               executor="process").scan(
            urls, countries, samples=3)
        assert _rows(threaded) == _rows(expected)
        assert _rows(processed) == _rows(expected)


class TestDatasetPickle:
    def test_round_trip_preserves_rows(self, nano_luminati):
        data = Lumscan(nano_luminati, seed=8).scan(
            _clean_urls(nano_luminati.world, 10), ["US", "CN"], samples=2)
        clone = pickle.loads(pickle.dumps(data))
        assert _rows(clone) == _rows(data)

    def test_pickle_trims_column_buffers(self, nano_luminati):
        data = Lumscan(nano_luminati, seed=8).scan(
            _clean_urls(nano_luminati.world, 10), ["US"], samples=2)
        state = data.__getstate__()
        for name in ScanDataset.COLUMN_BUFFERS:
            assert len(state[name]) == len(data)

    def test_clone_still_appendable(self, nano_luminati):
        data = Lumscan(nano_luminati, seed=8).scan(
            _clean_urls(nano_luminati.world, 6), ["US"], samples=1)
        clone = pickle.loads(pickle.dumps(data))
        before = len(clone)
        clone.append("late.example.com", "BR", 200, 1234, "<html>",
                     interfered=False)
        assert len(clone) == before + 1
        added = clone.row(before)
        assert (added.domain, added.country, added.status, added.length) == \
            ("late.example.com", "BR", 200, 1234)


# --------------------------------------------------------------------- #
# Shard exchange

def _encoded(data, tmp_path, name):
    """Serialized dataset bytes (gzip with mtime=0 — content-pure)."""
    path = str(tmp_path / f"{name}.jsonl.gz")
    dump_dataset(data, path)
    with open(path, "rb") as handle:
        return handle.read()


_REAL_RUN_CHUNK = engine_mod._process_run_chunk


def _inverted_run_chunk(seq, chunk):
    """Chunk runner that forces completion in reverse sequence order.

    Early chunks sleep longest, so within the engine's in-flight window
    the highest sequence number always completes first — the adversarial
    case for the reorder buffer.  Fork-started workers inherit the
    monkeypatched module state, and the pool pickles this function by
    reference, so the patch applies inside workers too.
    """
    time.sleep(max(0, 8 - seq) * 0.05)
    return _REAL_RUN_CHUNK(seq, chunk)


def _exploding_run_chunk(seq, chunk):
    """Chunk runner that fails on the third chunk, after shards exist."""
    if seq == 2:
        raise RuntimeError("chunk 2 exploded")
    time.sleep(0.02 * seq)
    return _REAL_RUN_CHUNK(seq, chunk)


def _exchanges():
    modes = ["file", "pickle"]
    if shm_available():
        modes.insert(0, "shm")
    return modes


class TestShardExchange:
    def test_exchanges_tuple(self):
        assert EXCHANGES == ("auto", "shm", "file", "pickle")

    def test_unknown_exchange_rejected(self, nano_luminati):
        with pytest.raises(ValueError):
            ScanEngine(Lumscan(nano_luminati, seed=3), exchange="carrier")

    @pytest.fixture(scope="class")
    def serial(self, nano_world):
        client = LuminatiClient(nano_world)
        urls = _clean_urls(nano_world, 14)
        countries = client.countries()[:4]
        data = Lumscan(client, seed=11).scan(urls, countries, samples=3)
        return urls, countries, data

    @pytest.mark.parametrize("exchange", _exchanges())
    def test_every_exchange_is_byte_identical_to_serial(
            self, nano_world, serial, tmp_path, exchange):
        urls, countries, expected = serial
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=16, executor="process",
                            exchange=exchange, spill_dir=str(tmp_path))
        data = engine.scan(urls, countries, samples=3)
        assert _encoded(data, tmp_path, exchange) == \
            _encoded(expected, tmp_path, "serial")

    def test_reverse_completion_order_is_byte_identical(
            self, nano_world, serial, tmp_path, monkeypatch):
        # Force chunks to complete in reverse order; the reorder buffer
        # must still merge them in sequence order, byte for byte.
        urls, countries, expected = serial
        monkeypatch.setattr(engine_mod, "_process_run_chunk",
                            _inverted_run_chunk)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=3, chunk_size=24, executor="process",
                            spill_dir=str(tmp_path),
                            target_chunk_seconds=None)
        data = engine.scan(urls, countries, samples=3)
        assert _encoded(data, tmp_path, "inverted") == \
            _encoded(expected, tmp_path, "serial")

    def test_worker_failure_leaves_no_segments(self, nano_world, serial,
                                               tmp_path, monkeypatch):
        # A worker exception mid-scan must release every shard already
        # written — buffered, in flight, or still on disk — and remove
        # the spill session directory under the checkpoint dir.
        urls, countries, _ = serial
        monkeypatch.setattr(engine_mod, "_process_run_chunk",
                            _exploding_run_chunk)
        spill = tmp_path / "ckpt"
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            exchange="file", spill_dir=str(spill),
                            target_chunk_seconds=None)
        with pytest.raises(RuntimeError, match="chunk 2 exploded"):
            engine.scan(urls, countries, samples=3)
        leftovers = [os.path.join(root, name)
                     for root, dirs, files in os.walk(spill)
                     for name in list(dirs) + list(files)]
        assert leftovers == []

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_worker_failure_leaves_no_shm_blocks(self, nano_world, serial,
                                                 monkeypatch):
        urls, countries, _ = serial
        before = set(os.listdir("/dev/shm"))
        monkeypatch.setattr(engine_mod, "_process_run_chunk",
                            _exploding_run_chunk)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            exchange="shm", target_chunk_seconds=None)
        with pytest.raises(RuntimeError, match="chunk 2 exploded"):
            engine.scan(urls, countries, samples=3)
        assert set(os.listdir("/dev/shm")) - before == set()

    def test_autotuned_scan_matches_serial(self, nano_world, serial,
                                           tmp_path):
        # With autotuning live (real clock), chunk boundaries shift run
        # to run — and must never leak into the output bytes.
        urls, countries, expected = serial
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            target_chunk_seconds=0.05)
        data = engine.scan(urls, countries, samples=3)
        assert _encoded(data, tmp_path, "tuned") == \
            _encoded(expected, tmp_path, "serial")


class TestSpillMerge:
    @pytest.fixture(scope="class")
    def serial(self, nano_world):
        client = LuminatiClient(nano_world)
        urls = _clean_urls(nano_world, 14)
        countries = client.countries()[:4]
        data = Lumscan(client, seed=11).scan(urls, countries, samples=3)
        return urls, countries, data

    def test_spill_merge_byte_identical_to_serial(self, nano_world, serial,
                                                  tmp_path):
        # The spill-backed merge streams worker shards to disk instead of
        # RAM; the mapped result must still serialize byte-for-byte like
        # a serial scan.
        urls, countries, expected = serial
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=16, executor="process",
                            merge="spill", spill_dir=str(tmp_path))
        data = engine.scan(urls, countries, samples=3)
        try:
            assert data.is_mapped
            assert _rows(data) == _rows(expected)
            assert _encoded(data, tmp_path, "spill") == \
                _encoded(expected, tmp_path, "serial")
        finally:
            data.close()

    def test_spill_leaves_no_files_behind(self, nano_world, serial,
                                          tmp_path):
        urls, countries, _ = serial
        spill = tmp_path / "ckpt"
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=16, executor="process",
                            merge="spill", spill_dir=str(spill))
        data = engine.scan(urls, countries, samples=3)
        try:
            # The transient segment is unlinked once mapped, so nothing
            # survives under the spill root even while the dataset lives.
            leftovers = [os.path.join(root, name)
                         for root, dirs, files in os.walk(spill)
                         for name in list(dirs) + list(files)]
            assert leftovers == []
            assert len(data) == len(serial[2])
        finally:
            data.close()

    def test_spill_worker_failure_cleans_up(self, nano_world, serial,
                                            tmp_path, monkeypatch):
        urls, countries, _ = serial
        monkeypatch.setattr(engine_mod, "_process_run_chunk",
                            _exploding_run_chunk)
        spill = tmp_path / "ckpt"
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            exchange="file", merge="spill",
                            spill_dir=str(spill),
                            target_chunk_seconds=None)
        with pytest.raises(RuntimeError, match="chunk 2 exploded"):
            engine.scan(urls, countries, samples=3)
        leftovers = [os.path.join(root, name)
                     for root, dirs, files in os.walk(spill)
                     for name in list(dirs) + list(files)]
        assert leftovers == []

    def test_spill_requires_process_executor(self, nano_luminati):
        with pytest.raises(ValueError, match="merge='spill'"):
            ScanEngine(Lumscan(nano_luminati, seed=3), merge="spill")

    def test_unknown_merge_rejected(self, nano_luminati):
        with pytest.raises(ValueError, match="merge must be"):
            ScanEngine(Lumscan(nano_luminati, seed=3), executor="process",
                       merge="tape")


class TestAbsorptionTokens:
    def test_duplicate_token_rejected(self, nano_world):
        scanner = Lumscan(LuminatiClient(nano_world), seed=5)
        scanner.absorb_worker_counts(10, 20, token="batch-A")
        with pytest.raises(ValueError, match="batch-A"):
            scanner.absorb_worker_counts(10, 20, token="batch-A")

    def test_distinct_tokens_accumulate(self, nano_world):
        client = LuminatiClient(nano_world)
        scanner = Lumscan(client, seed=5)
        base = client.request_count
        scanner.absorb_worker_counts(3, 0, token="batch-B")
        scanner.absorb_worker_counts(4, 0, token="batch-C")
        assert client.request_count == base + 7

    def test_untokened_absorption_keeps_working(self, nano_world):
        client = LuminatiClient(nano_world)
        scanner = Lumscan(client, seed=5)
        base = client.request_count
        scanner.absorb_worker_counts(2, 0)
        scanner.absorb_worker_counts(2, 0)
        assert client.request_count == base + 4

    def test_engine_scans_use_fresh_tokens(self, nano_world):
        # Two scans through one engine absorb two batches; the global
        # token counter must keep them distinct.
        urls = _clean_urls(nano_world, 6)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=4, executor="process")
        engine.scan(urls, ["US"], samples=1)
        engine.scan(urls, ["IR"], samples=1)


def _exploding_worker_init(spec):
    """Initializer that dies before the worker ever builds a scanner."""
    raise RuntimeError("worker init exploded")


class TestWorldpackInitCleanup:
    """Crash-during-init must not leak the frozen worldpack's storage.

    The engine freezes one worldpack per process scan and hands its
    handle to every worker initializer.  If an initializer dies, the
    pool breaks before any chunk completes — the parent still owns the
    pack and must unlink its shared-memory segment on the way out, the
    same contract the shard-exchange session tests enforce above.
    """

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_worker_init_crash_releases_worldpack_shm(self, nano_world,
                                                      monkeypatch):
        urls = _clean_urls(nano_world, 10)
        before = set(os.listdir("/dev/shm"))
        monkeypatch.setattr(engine_mod, "_process_worker_init",
                            _exploding_worker_init)
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            exchange="shm", target_chunk_seconds=None)
        with pytest.raises(Exception) as excinfo:
            engine.scan(urls, ["US", "IR"], samples=2)
        assert "process" in type(excinfo.value).__name__.lower() \
            or "exploded" in str(excinfo.value)
        assert set(os.listdir("/dev/shm")) - before == set()

    @pytest.mark.skipif(not shm_available(),
                        reason="POSIX shared memory unavailable")
    def test_successful_scan_releases_worldpack_shm(self, nano_world):
        urls = _clean_urls(nano_world, 10)
        before = set(os.listdir("/dev/shm"))
        engine = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=11),
                            workers=2, chunk_size=8, executor="process",
                            exchange="shm", target_chunk_seconds=None)
        engine.scan(urls, ["US", "IR"], samples=2)
        assert set(os.listdir("/dev/shm")) - before == set()
