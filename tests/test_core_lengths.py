"""Tests for the page-length outlier heuristic."""

import pytest

from repro.core.lengths import (
    extract_outliers,
    relative_differences,
    representative_lengths,
)
from repro.lumscan.records import NO_RESPONSE, ScanDataset


def _dataset():
    data = ScanDataset()
    # a.com: normal ~10k, blocked page 500 in IR.
    data.append("a.com", "US", 200, 10_000, None)
    data.append("a.com", "US", 200, 10_300, None)
    data.append("a.com", "DE", 200, 9_900, None)
    data.append("a.com", "IR", 403, 500, "<html>block</html>")
    # b.com: page varies mildly, never blocked.
    data.append("b.com", "US", 200, 8_000, None)
    data.append("b.com", "IR", 200, 7_800, None)
    # c.com: errors only.
    data.append("c.com", "US", NO_RESPONSE, 0, None, error="timeout")
    return data


class TestRepresentatives:
    def test_max_length_wins(self):
        reps = representative_lengths(_dataset())
        assert reps["a.com"] == 10_300
        assert reps["b.com"] == 8_000

    def test_errors_excluded(self):
        assert "c.com" not in representative_lengths(_dataset())

    def test_country_restriction(self):
        reps = representative_lengths(_dataset(), reference_countries=["DE"])
        assert reps["a.com"] == 9_900
        assert "b.com" not in reps

    def test_block_pages_contribute(self):
        # A domain blocked everywhere has the block page as representative
        # (which is why Table 2 recall < 100%).
        data = ScanDataset()
        data.append("x.com", "IR", 403, 400, "<html>block</html>")
        assert representative_lengths(data)["x.com"] == 400


class TestExtractOutliers:
    def test_block_page_flagged(self):
        data = _dataset()
        outliers = extract_outliers(data, representative_lengths(data))
        assert [(o.sample.domain, o.sample.country) for o in outliers] == [
            ("a.com", "IR")]

    def test_relative_difference_value(self):
        data = _dataset()
        outlier = extract_outliers(data, representative_lengths(data))[0]
        assert outlier.relative_difference == pytest.approx(
            (10_300 - 500) / 10_300)

    def test_mild_variation_not_flagged(self):
        data = _dataset()
        outliers = extract_outliers(data, representative_lengths(data))
        assert all(o.sample.domain != "b.com" for o in outliers)

    def test_cutoff_sensitivity(self):
        data = _dataset()
        reps = representative_lengths(data)
        tight = extract_outliers(data, reps, cutoff=0.01)
        loose = extract_outliers(data, reps, cutoff=0.9)
        assert len(tight) >= len(extract_outliers(data, reps))
        assert len(loose) <= 1

    def test_cutoff_validation(self):
        data = _dataset()
        with pytest.raises(ValueError):
            extract_outliers(data, {}, cutoff=0.0)
        with pytest.raises(ValueError):
            extract_outliers(data, {}, cutoff=1.0)

    def test_raw_cutoff_mode(self):
        data = _dataset()
        reps = representative_lengths(data)
        outliers = extract_outliers(data, reps, raw_cutoff=5_000)
        assert [(o.sample.domain, o.sample.country) for o in outliers] == [
            ("a.com", "IR")]
        none = extract_outliers(data, reps, raw_cutoff=50_000)
        assert none == []

    def test_raw_cutoff_penalizes_long_pages(self):
        # The §4.1.5 observation: raw cutoffs flag big pages' natural
        # variation while missing short pages' blocks.
        data = ScanDataset()
        data.append("big.com", "US", 200, 400_000, None)
        data.append("big.com", "DE", 200, 360_000, None)   # -10%, normal
        data.append("small.com", "US", 200, 2_000, "x" * 2_000)
        data.append("small.com", "IR", 403, 900, "<html>block</html>")  # -55%
        reps = representative_lengths(data)
        raw = extract_outliers(data, reps, raw_cutoff=30_000)
        raw_keys = {(o.sample.domain, o.sample.country) for o in raw}
        assert ("big.com", "DE") in raw_keys          # false alarm
        assert ("small.com", "IR") not in raw_keys    # miss
        pct = extract_outliers(data, reps, cutoff=0.30)
        pct_keys = {(o.sample.domain, o.sample.country) for o in pct}
        assert ("big.com", "DE") not in pct_keys
        assert ("small.com", "IR") in pct_keys

    def test_missing_representative_skipped(self):
        data = ScanDataset()
        data.append("solo.com", "US", 200, 100, "x")
        assert extract_outliers(data, {}) == []


class TestRelativeDifferences:
    def test_counts_valid_samples(self):
        data = _dataset()
        diffs = relative_differences(data, representative_lengths(data))
        assert len(diffs) == 6  # the error row is excluded

    def test_body_flag(self):
        data = _dataset()
        diffs = relative_differences(data, representative_lengths(data))
        with_body = [d for d, has_body in diffs if has_body]
        assert len(with_body) == 1
