"""The injectable clock: frozen in tests, monotonic in production."""

from __future__ import annotations

import pytest

from repro.util.clock import SYSTEM_CLOCK, Clock, ManualClock, Stopwatch, SystemClock


def test_manual_clock_is_frozen_until_advanced():
    clock = ManualClock()
    assert clock.monotonic() == 0.0
    assert clock.monotonic() == 0.0
    clock.advance(2.5)
    assert clock.monotonic() == 2.5


def test_manual_clock_rejects_backward_steps():
    clock = ManualClock(start=10.0)
    with pytest.raises(ValueError):
        clock.advance(-0.1)
    assert clock.monotonic() == 10.0


def test_stopwatch_measures_manual_advances_exactly():
    clock = ManualClock()
    stopwatch = clock.stopwatch()
    assert stopwatch.elapsed() == 0.0
    clock.advance(1.5)
    assert stopwatch.elapsed() == 1.5
    clock.advance(0.5)
    assert stopwatch.elapsed() == 2.0


def test_stopwatch_restart_returns_discarded_elapsed():
    clock = ManualClock()
    stopwatch = Stopwatch(clock)
    clock.advance(3.0)
    assert stopwatch.restart() == 3.0
    assert stopwatch.elapsed() == 0.0
    clock.advance(1.0)
    assert stopwatch.elapsed() == 1.0


def test_system_clock_never_goes_backwards():
    clock = SystemClock()
    readings = [clock.monotonic() for _ in range(100)]
    assert readings == sorted(readings)


def test_module_singleton_is_a_system_clock():
    assert isinstance(SYSTEM_CLOCK, SystemClock)
    assert isinstance(SYSTEM_CLOCK, Clock)


def test_study_runner_accepts_injected_clock():
    """StageStats timing is driven by the injected clock, so a frozen
    ManualClock yields exactly-zero stage seconds — fully deterministic."""
    from repro.run.runner import StudyRunner
    from repro.run.stage import ArtifactSpec, RunContext, Stage

    stage = Stage(name="noop", outputs=(ArtifactSpec(name="value"),),
                  run=lambda context: {"value": 41})
    runner = StudyRunner("test", [stage], clock=ManualClock())
    context = runner.run(RunContext(world=None, config=None))
    assert context.artifacts["value"] == 41
    assert [stats.seconds for stats in context.stats] == [0.0]
