"""Tests for the DNS model and SPF netblock expansion."""

import pytest

from repro.netsim.dns import DNSServer, NXDOMAIN, expand_spf_netblocks


class TestDNSServer:
    def test_query_a_record(self):
        dns = DNSServer()
        dns.add_record("example.com", "A", "10.0.0.1")
        assert dns.query("example.com", "A") == ["10.0.0.1"]

    def test_multiple_records(self):
        dns = DNSServer()
        dns.add_record("e.com", "NS", "ns1.e.com")
        dns.add_record("e.com", "NS", "ns2.e.com")
        assert dns.query("e.com", "NS") == ["ns1.e.com", "ns2.e.com"]

    def test_case_insensitive_names(self):
        dns = DNSServer()
        dns.add_record("Example.COM", "A", "10.0.0.1")
        assert dns.query("example.com", "a") == ["10.0.0.1"]

    def test_trailing_dot_normalized(self):
        dns = DNSServer()
        dns.add_record("e.com.", "A", "10.0.0.1")
        assert dns.query("e.com", "A") == ["10.0.0.1"]

    def test_nxdomain(self):
        with pytest.raises(NXDOMAIN):
            DNSServer().query("missing.com", "A")

    def test_wrong_type_returns_empty(self):
        dns = DNSServer()
        dns.add_record("e.com", "A", "10.0.0.1")
        assert dns.query("e.com", "TXT") == []

    def test_try_query_swallows_nxdomain(self):
        assert DNSServer().try_query("missing.com", "A") == []

    def test_names(self):
        dns = DNSServer()
        dns.add_record("a.com", "A", "1.1.1.1")
        dns.add_record("b.com", "A", "2.2.2.2")
        assert set(dns.names()) == {"a.com", "b.com"}


class TestSpfExpansion:
    def _netblock_dns(self):
        dns = DNSServer()
        dns.add_record("_cloud-netblocks.googleusercontent.com", "TXT",
                       "v=spf1 include:_cloud-netblocks1.googleusercontent.com "
                       "include:_cloud-netblocks2.googleusercontent.com ?all")
        dns.add_record("_cloud-netblocks1.googleusercontent.com", "TXT",
                       "v=spf1 ip4:10.10.0.0/16 ip4:10.11.0.0/16 ?all")
        dns.add_record("_cloud-netblocks2.googleusercontent.com", "TXT",
                       "v=spf1 ip4:10.12.0.0/16 ?all")
        return dns

    def test_recursive_expansion(self):
        blocks = expand_spf_netblocks(
            self._netblock_dns(), "_cloud-netblocks.googleusercontent.com")
        assert blocks == ["10.10.0.0/16", "10.11.0.0/16", "10.12.0.0/16"]

    def test_missing_root(self):
        assert expand_spf_netblocks(DNSServer(), "nothing.example") == []

    def test_cycle_terminates(self):
        dns = DNSServer()
        dns.add_record("a.example", "TXT", "v=spf1 include:b.example ip4:1.0.0.0/24")
        dns.add_record("b.example", "TXT", "v=spf1 include:a.example ip4:2.0.0.0/24")
        blocks = expand_spf_netblocks(dns, "a.example")
        assert set(blocks) == {"1.0.0.0/24", "2.0.0.0/24"}

    def test_depth_limit(self):
        dns = DNSServer()
        for i in range(20):
            dns.add_record(f"n{i}.example", "TXT",
                           f"v=spf1 include:n{i + 1}.example ip4:10.{i}.0.0/24")
        blocks = expand_spf_netblocks(dns, "n0.example", max_depth=5)
        assert len(blocks) <= 7

    def test_duplicate_blocks_collapsed(self):
        dns = DNSServer()
        dns.add_record("x.example", "TXT",
                       "v=spf1 ip4:10.0.0.0/24 ip4:10.0.0.0/24 ?all")
        assert expand_spf_netblocks(dns, "x.example") == ["10.0.0.0/24"]
