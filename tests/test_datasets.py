"""Tests for the Alexa, FortiGuard, and Citizen Lab dataset services."""

import pytest

from repro.datasets.alexa import AlexaList
from repro.datasets.citizenlab import CitizenLabList
from repro.datasets.fortiguard import FortiGuardClient


@pytest.fixture(scope="module")
def alexa(nano_world):
    return AlexaList(nano_world.population)


@pytest.fixture(scope="module")
def fortiguard(nano_world):
    return FortiGuardClient(nano_world.population, nano_world.taxonomy, seed=1)


@pytest.fixture(scope="module")
def citizenlab(tiny_world):
    return CitizenLabList(tiny_world.population, tiny_world.taxonomy, seed=1)


class TestAlexa:
    def test_top_ordering(self, alexa, nano_world):
        top = alexa.top(5)
        assert top == [d.name for d in nano_world.population.top(5)]

    def test_top10k_caps_at_population(self, alexa, nano_world):
        assert len(alexa.top10k()) == len(nano_world.population)

    def test_full(self, alexa, nano_world):
        assert len(alexa.full()) == len(nano_world.population)

    def test_sample_deterministic(self, alexa):
        domains = alexa.full()
        a = alexa.sample(domains, 0.1, seed=3)
        b = alexa.sample(domains, 0.1, seed=3)
        assert a == b

    def test_sample_size(self, alexa):
        domains = alexa.full()
        sample = alexa.sample(domains, 0.25, seed=0)
        assert len(sample) == round(len(domains) * 0.25)

    def test_sample_fraction_validation(self, alexa):
        with pytest.raises(ValueError):
            alexa.sample(["a.com"], 0.0)
        with pytest.raises(ValueError):
            alexa.sample(["a.com"], 1.5)

    def test_sample_subset(self, alexa):
        domains = alexa.full()
        assert set(alexa.sample(domains, 0.2, seed=1)) <= set(domains)


class TestFortiGuard:
    def test_unknown_domain_unrated(self, fortiguard):
        assert fortiguard.categorize("never-generated.example") == "Unrated"

    def test_unrated_is_unsafe(self, fortiguard):
        assert not fortiguard.is_safe("never-generated.example")

    def test_mostly_correct(self, fortiguard, nano_world):
        wrong = sum(
            1 for d in nano_world.population
            if fortiguard.categorize(d.name) != d.category)
        assert wrong / len(nano_world.population) < 0.05

    def test_misfiles_are_deterministic(self, nano_world):
        a = FortiGuardClient(nano_world.population, nano_world.taxonomy, seed=9)
        b = FortiGuardClient(nano_world.population, nano_world.taxonomy, seed=9)
        names = [d.name for d in nano_world.population][:100]
        assert a.categorize_all(names) == b.categorize_all(names)

    def test_filter_safe_removes_risky(self, nano_world):
        fortiguard = FortiGuardClient(nano_world.population,
                                      nano_world.taxonomy,
                                      error_rate=0.0, seed=1)
        names = [d.name for d in nano_world.population]
        safe = fortiguard.filter_safe(names)
        risky = set(nano_world.taxonomy.risky_names())
        for name in safe:
            assert nano_world.population.get(name).category not in risky

    def test_error_rate_validation(self, nano_world):
        with pytest.raises(ValueError):
            FortiGuardClient(nano_world.population, error_rate=1.0)

    def test_categorize_all(self, fortiguard, nano_world):
        names = [d.name for d in nano_world.population][:10]
        result = fortiguard.categorize_all(names)
        assert set(result) == set(names)


class TestCitizenLab:
    def test_contains_censored_domains(self, citizenlab, tiny_world):
        censored = [d.name for d in tiny_world.population if d.censored_in]
        assert censored
        for name in censored:
            assert name in citizenlab

    def test_contains_some_benign(self, citizenlab, tiny_world):
        benign = [d for d in citizenlab.domains()
                  if not tiny_world.population.get(d).censored_in]
        assert benign

    def test_filter_out(self, citizenlab, tiny_world):
        names = [d.name for d in tiny_world.population]
        kept = citizenlab.filter_out(names)
        assert len(kept) == len(names) - sum(1 for n in names if n in citizenlab)

    def test_deterministic(self, tiny_world):
        a = CitizenLabList(tiny_world.population, tiny_world.taxonomy, seed=1)
        b = CitizenLabList(tiny_world.population, tiny_world.taxonomy, seed=1)
        assert a.domains() == b.domains()

    def test_len(self, citizenlab):
        assert len(citizenlab) == len(citizenlab.domains())
