"""Tests for origin page generation and per-sample jitter."""

import random

from repro.websim.content import generate_page, sample_jitter


class TestGeneratePage:
    def test_deterministic(self):
        a = generate_page("example.com", "Shopping", seed=1)
        b = generate_page("example.com", "Shopping", seed=1)
        assert a == b

    def test_varies_by_domain(self):
        a = generate_page("a.com", "Shopping", seed=1)
        b = generate_page("b.com", "Shopping", seed=1)
        assert a != b

    def test_varies_by_seed(self):
        assert (generate_page("a.com", "News and Media", seed=1)
                != generate_page("a.com", "News and Media", seed=2))

    def test_is_html(self):
        page = generate_page("site.net", "Travel", seed=0)
        assert page.startswith("<!DOCTYPE html>")
        assert "</html>" in page
        assert "Travel" in page

    def test_length_bounds(self):
        for i in range(15):
            page = generate_page(f"d{i}.com", "Games", seed=3)
            assert 4_000 <= len(page) <= 500_000

    def test_lengths_vary_across_domains(self):
        lengths = {len(generate_page(f"x{i}.com", "Games", seed=3))
                   for i in range(10)}
        assert len(lengths) > 5


class TestSampleJitter:
    def test_preserves_base(self):
        base = generate_page("j.com", "Sports", seed=0)
        jittered = sample_jitter(base, random.Random(1))
        assert jittered.startswith(base)

    def test_jitter_bounded(self):
        base = "x" * 10_000
        rng = random.Random(2)
        for _ in range(20):
            jittered = sample_jitter(base, rng, max_fraction=0.05)
            extra = len(jittered) - len(base)
            # comment wrapper + up to 5% padding
            assert 0 <= extra <= 10_000 * 0.05 + 40

    def test_jitter_varies(self):
        base = "y" * 5_000
        rng = random.Random(3)
        lengths = {len(sample_jitter(base, rng)) for _ in range(10)}
        assert len(lengths) > 3
