"""Tests for IP allocation and netblocks."""

import pytest

from repro.netsim.ip import AddressAllocator, Netblock, _address_to_int


class TestAddressToInt:
    def test_parses_valid(self):
        assert _address_to_int("10.0.0.1") == (10 << 24) + 1

    def test_rejects_garbage(self):
        assert _address_to_int("not-an-ip") is None
        assert _address_to_int("1.2.3") is None
        assert _address_to_int("1.2.3.4.5") is None
        assert _address_to_int("1.2.3.999") is None
        assert _address_to_int("1.2.3.-4") is None


class TestNetblock:
    def test_contains_inside(self):
        block = Netblock(cidr="10.1.0.0/16", owner="x")
        assert "10.1.2.3" in block

    def test_excludes_outside(self):
        block = Netblock(cidr="10.1.0.0/16", owner="x")
        assert "10.2.0.1" not in block

    def test_contains_invalid_address(self):
        assert "garbage" not in Netblock(cidr="10.1.0.0/16", owner="x")

    def test_address_at_stays_inside(self):
        block = Netblock(cidr="10.5.0.0/16", owner="x")
        for index in (0, 1, 100, 65_533, 70_000):
            assert block.address_at(index) in block

    def test_address_at_avoids_network_and_broadcast(self):
        block = Netblock(cidr="10.5.0.0/16", owner="x")
        for index in range(0, 200, 7):
            address = block.address_at(index)
            assert address != "10.5.0.0"
            assert address != "10.5.255.255"

    def test_int_range(self):
        first, last = Netblock(cidr="10.0.0.0/16", owner="x").int_range
        assert last - first + 1 == 65536


class TestAddressAllocator:
    def test_blocks_are_disjoint(self):
        allocator = AddressAllocator()
        blocks_a = allocator.allocate("a", 3)
        blocks_b = allocator.allocate("b", 3)
        cidrs = {b.cidr for b in blocks_a + blocks_b}
        assert len(cidrs) == 6

    def test_owner_tracking(self):
        allocator = AddressAllocator()
        allocator.allocate("owner1", 2)
        assert len(allocator.blocks_of("owner1")) == 2
        assert allocator.blocks_of("unknown") == []

    def test_owner_of(self):
        allocator = AddressAllocator()
        block = allocator.allocate("me", 1)[0]
        address = block.address_at(5)
        assert allocator.owner_of(address) == "me"
        assert allocator.owner_of("200.0.0.1") is None

    def test_random_address_in_owner_space(self):
        allocator = AddressAllocator(seed=1)
        allocator.allocate("cc", 2)
        for _ in range(20):
            address = allocator.random_address("cc")
            assert allocator.owner_of(address) == "cc"

    def test_random_address_unknown_owner(self):
        with pytest.raises(KeyError):
            AddressAllocator().random_address("nobody")

    def test_count_validation(self):
        with pytest.raises(ValueError):
            AddressAllocator().allocate("x", 0)

    def test_deterministic_layout(self):
        a1 = AddressAllocator(seed=3)
        a2 = AddressAllocator(seed=3)
        assert ([b.cidr for b in a1.allocate("x", 4)]
                == [b.cidr for b in a2.allocate("x", 4)])

    def test_owners_iteration(self):
        allocator = AddressAllocator()
        allocator.allocate("a")
        allocator.allocate("b")
        assert set(allocator.owners()) == {"a", "b"}
