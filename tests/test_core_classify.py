"""Batch classification fast path: memoization and cache correctness."""

import random

import pytest

from repro.core.classify import (
    VERDICT_ERROR,
    VERDICT_OK,
    classify_body,
    classify_sample,
    classify_samples,
)
from repro.core.fingerprints import FingerprintRegistry
from repro.lumscan.records import Sample
from repro.websim import blockpages


@pytest.fixture(scope="module")
def rng():
    return random.Random(3)


def _page_sample(page_type, rng, domain="a.com", country="IR", status=403):
    page = blockpages.render(page_type, rng, domain, country)
    return Sample(domain=domain, country=country, status=status,
                  length=len(page.body), body=page.body, error=None)


@pytest.fixture(scope="module")
def mixed_samples(rng):
    samples = []
    for page_type in blockpages.ALL_PAGE_TYPES:
        samples.append(_page_sample(page_type, rng))
    samples.append(Sample(domain="ok.com", country="US", status=200,
                          length=20, body="<html>plain page</html>", error=None))
    samples.append(Sample(domain="big.com", country="US", status=200,
                          length=500_000, body=None, error=None))
    samples.append(Sample(domain="down.com", country="IR", status=0,
                          length=0, body=None, error="timeout"))
    samples.append(Sample(
        domain="cens.ir", country="IR", status=200, length=60,
        body="<iframe src='http://10.10.34.34?type=x'></iframe>", error=None))
    # Duplicate every sample to exercise the memo hit path.
    return samples + list(samples)


class TestBatchMatchesPerSample:
    def test_elementwise_equal_to_classify_sample(self, mixed_samples):
        batch = classify_samples(mixed_samples)
        singles = [classify_sample(s) for s in mixed_samples]
        assert batch == singles

    def test_elementwise_equal_with_explicit_registry(self, mixed_samples):
        registry = FingerprintRegistry()
        batch = classify_samples(mixed_samples, registry)
        singles = [classify_sample(s, registry) for s in mixed_samples]
        assert batch == singles

    def test_error_and_bodyless_samples(self):
        samples = [
            Sample(domain="d", country="US", status=0, length=0,
                   body=None, error="timeout"),
            Sample(domain="d", country="US", status=200, length=9_999_999,
                   body=None, error=None),
        ]
        kinds = [v.kind for v in classify_samples(samples)]
        assert kinds == [VERDICT_ERROR, VERDICT_OK]

    def test_empty_batch(self):
        assert classify_samples([]) == []


class TestMemoization:
    def test_memo_populated_per_distinct_body(self, mixed_samples):
        cache = {}
        classify_samples(mixed_samples, cache=cache)
        distinct = {s.body for s in mixed_samples
                    if s.ok and s.body is not None}
        assert set(cache) == distinct

    def test_shared_cache_across_batches(self, mixed_samples):
        cache = {}
        first = classify_samples(mixed_samples, cache=cache)
        before = dict(cache)
        second = classify_samples(mixed_samples, cache=cache)
        assert first == second
        assert cache == before  # second pass was all memo hits

    def test_memo_hits_skip_registry(self, rng):
        sample = _page_sample(blockpages.AKAMAI_BLOCK, rng)

        class CountingRegistry(FingerprintRegistry):
            calls = 0

            def match(self, body):
                CountingRegistry.calls += 1
                return super().match(body)

        registry = CountingRegistry()
        classify_samples([sample] * 50, registry)
        assert CountingRegistry.calls == 1

    def test_cached_verdicts_match_uncached(self, mixed_samples):
        assert (classify_samples(mixed_samples, cache={})
                == classify_samples(mixed_samples))


class TestDefaultRegistryCache:
    def test_default_is_shared_singleton(self):
        assert FingerprintRegistry.default() is FingerprintRegistry.default()

    def test_subclass_default_not_polluted(self):
        class Custom(FingerprintRegistry):
            pass

        assert type(Custom.default()) is Custom
        assert type(FingerprintRegistry.default()) is FingerprintRegistry

    def test_prefilter_equivalent_to_full_conjunction(self, rng):
        # The compiled cheapest-marker plan must not change match results.
        registry = FingerprintRegistry.default()
        for page_type in blockpages.ALL_PAGE_TYPES:
            page = blockpages.render(page_type, rng, "x.org", "SY")
            fp = registry.get(page_type)
            assert fp.matches(page.body)
            assert registry.match(page.body) == page_type

    def test_registry_less_classify_body_uses_cache(self, rng):
        page = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng, "a.com", "IR")
        v1 = classify_body(page.body)
        v2 = classify_body(page.body, FingerprintRegistry.default())
        assert v1 == v2
