"""Length-only body fast lane: draw-parity and equivalence tests.

The fast lane's correctness claim has three layers, each pinned here:

1. ``page_length`` replays ``generate_page``'s RNG draws exactly and
   returns exactly ``len(generate_page(...))``.
2. A :class:`BodyPolicy`-elided ``World.fetch`` answers with the same
   status, headers, and content length as a materializing fetch — and
   materializes byte-identical bodies whenever they are short enough for
   the dataset to retain.
3. A scan under the default fast lane produces a :class:`ScanDataset`
   whose columns, retained bodies, candidate pairs, confirmed blocks and
   per-sample classifications are identical to a full-materialization
   scan.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.classify import classify_samples
from repro.core.resample import confirm_blocks, find_candidate_pairs
from repro.httpsim.messages import BodyPolicy, Request
from repro.httpsim.url import parse_url
from repro.httpsim.useragent import browser_headers
from repro.lumscan.engine import ScanEngine
from repro.lumscan.records import BODY_KEEP_THRESHOLD
from repro.lumscan.scanner import Lumscan
from repro.netsim.errors import FetchError
from repro.proxynet.luminati import LuminatiClient
from repro.util.rng import derive_rng
from repro.websim.content import (
    JITTER_OVERHEAD,
    generate_page,
    jitter_length,
    jitter_pad,
    jitter_token,
    page_length,
    render_jitter,
    sample_jitter,
)

_CATEGORIES = ("News", "Shopping", "Travel", "Auctions", "Personal Vehicles",
               "Business", "Health", "Government")


def _rows(data):
    return [data.row(i) for i in range(len(data))]


def _clean_urls(world, n):
    urls = []
    for domain in world.population:
        if not domain.dead and not domain.redirect_loop:
            urls.append(f"http://{domain.name}/")
            if len(urls) == n:
                break
    return urls


def _study_urls(world):
    """First 40 clean domains plus every geoblocking domain.

    Guarantees the scan slice contains block pages, so the candidate /
    confirmation stages of the equivalence suite actually engage.
    """
    urls = _clean_urls(world, 40)
    for name in sorted(world.geoblocking_domains()):
        url = f"http://{name}/"
        if url not in urls:
            urls.append(url)
    return urls


class TestBodyPolicy:
    def test_full_never_elides(self):
        assert not BodyPolicy.full().elides
        assert not BodyPolicy().elides

    def test_lengths_over_elides(self):
        policy = BodyPolicy.lengths_over(6_000)
        assert policy.elides
        assert policy.length_threshold == 6_000

    def test_negative_threshold_rejected(self):
        with pytest.raises(ValueError):
            BodyPolicy.lengths_over(-1)


class TestPageLengthParity:
    @settings(max_examples=60, deadline=None)
    @given(st.integers(0, 10 ** 6), st.sampled_from(_CATEGORIES),
           st.integers(0, 9))
    def test_matches_generate_page(self, index, category, seed):
        domain = f"prop{index}.example.com"
        assert page_length(domain, category, seed) == \
            len(generate_page(domain, category, seed))

    def test_whole_nano_population(self, nano_world):
        # Every (domain, category) the nano world can ever serve.
        seed = nano_world.config.seed
        for domain in nano_world.population:
            assert page_length(domain.name, domain.category, seed) == \
                len(generate_page(domain.name, domain.category, seed))


class TestJitterSplit:
    def test_split_reproduces_sample_jitter(self):
        page = generate_page("split.example.com", "News", 0)
        monolithic_rng = derive_rng(1, "jitter")
        split_rng = derive_rng(1, "jitter")
        expected = sample_jitter(page, monolithic_rng)
        pad = jitter_pad(len(page), split_rng)
        token = jitter_token(split_rng)
        assert render_jitter(page, pad, token) == expected
        assert jitter_length(len(page), pad) == len(expected)
        # Both paths consumed the identical draw sequence.
        assert split_rng.getstate() == monolithic_rng.getstate()

    def test_overhead_constant(self):
        page = "x" * 100
        rng = derive_rng(2, "jitter")
        pad = jitter_pad(len(page), rng)
        assert len(render_jitter(page, pad, jitter_token(rng))) == \
            len(page) + pad + JITTER_OVERHEAD


class TestFetchEquivalence:
    """Full vs elided World.fetch over every nano (domain, country) pair."""

    def test_fetch_lane_equivalence(self, nano_world):
        policy = BodyPolicy.lengths_over(BODY_KEEP_THRESHOLD)
        countries = nano_world.registry.luminati_codes()[:4]
        checked = elided = 0
        for domain in nano_world.population:
            if domain.dead or domain.redirect_loop:
                continue
            for country in countries:
                ip = nano_world.residential_address(
                    country, derive_rng(5, "ip", country, domain.name))
                request = Request(url=parse_url(f"http://{domain.name}/"),
                                  headers=browser_headers())
                rng_full = derive_rng(5, "eq", domain.name, country)
                rng_fast = derive_rng(5, "eq", domain.name, country)
                try:
                    full = nano_world.fetch(request, ip, rng=rng_full)
                except FetchError as exc:
                    with pytest.raises(type(exc)):
                        nano_world.fetch(request, ip, rng=rng_fast,
                                         body_policy=policy)
                    continue
                fast = nano_world.fetch(request, ip, rng=rng_fast,
                                        body_policy=policy)
                assert fast.status == full.status
                assert fast.content_length == full.content_length
                assert fast.headers == full.headers
                if fast.body_length is None:
                    assert fast.body == full.body
                else:
                    elided += 1
                    assert fast.status == 200
                    assert fast.body == ""
                    assert fast.content_length > BODY_KEEP_THRESHOLD
                checked += 1
        assert checked > 100
        assert elided > 50  # the lane actually engaged

    def test_shared_stream_never_elides(self, nano_world):
        # Without a task-private rng the shared noise stream must see
        # every draw, so the policy is ignored and the body materializes.
        policy = BodyPolicy.lengths_over(0)
        for domain in nano_world.population:
            if domain.dead or domain.redirect_loop or \
                    domain.name in nano_world.policies:
                continue
            ip = nano_world.residential_address("US", derive_rng(6, "ip"))
            request = Request(url=parse_url(f"http://{domain.name}/"),
                              headers=browser_headers())
            try:
                response = nano_world.fetch(request, ip, body_policy=policy)
            except FetchError:
                continue
            if response.status == 200:
                assert response.body_length is None
                assert response.body
                return
        pytest.fail("no 200 response found")


class TestDatasetEquivalence:
    """Default fast-lane scans == full-materialization scans, end to end."""

    @pytest.fixture(scope="class")
    def scans(self, nano_world):
        urls = _study_urls(nano_world)
        countries = LuminatiClient(nano_world).countries()
        full = Lumscan(LuminatiClient(nano_world), seed=13,
                       body_policy=BodyPolicy.full()).scan(
            urls, countries, samples=3)
        fast = Lumscan(LuminatiClient(nano_world), seed=13).scan(
            urls, countries, samples=3)
        return full, fast

    def test_rows_identical(self, scans):
        full, fast = scans
        assert _rows(fast) == _rows(full)

    def test_retained_bodies_identical(self, scans):
        full, fast = scans
        assert {i: full.body(i) for i in range(len(full))} == \
            {i: fast.body(i) for i in range(len(fast))}

    def test_classifications_identical(self, scans, registry):
        full, fast = scans
        full_verdicts = classify_samples(full, registry)
        fast_verdicts = classify_samples(fast, registry)
        assert [(v.kind, v.page_type, v.provider) for v in full_verdicts] \
            == [(v.kind, v.page_type, v.provider) for v in fast_verdicts]

    def test_candidates_and_confirmations_identical(self, scans, registry,
                                                    nano_world):
        full, fast = scans
        full_candidates = find_candidate_pairs(full, registry)
        fast_candidates = find_candidate_pairs(fast, registry)
        assert full_candidates == fast_candidates
        pairs = sorted(full_candidates)
        if not pairs:
            pytest.skip("no candidate pairs in this slice")
        full_resampled = Lumscan(
            LuminatiClient(nano_world), seed=14,
            body_policy=BodyPolicy.full()).resample(pairs, samples=6, epoch=1)
        fast_resampled = Lumscan(
            LuminatiClient(nano_world), seed=14).resample(
            pairs, samples=6, epoch=1)
        assert _rows(fast_resampled) == _rows(full_resampled)
        full_confirmed = confirm_blocks(full, full_resampled, registry)
        fast_confirmed = confirm_blocks(fast, fast_resampled, registry)
        assert [(c.domain, c.country, c.page_type) for c in full_confirmed] \
            == [(c.domain, c.country, c.page_type) for c in fast_confirmed]

    def test_fast_lane_composes_with_thread_pool(self, nano_world, scans):
        full, _ = scans
        urls = _study_urls(nano_world)
        countries = LuminatiClient(nano_world).countries()
        pooled = ScanEngine(Lumscan(LuminatiClient(nano_world), seed=13),
                            workers=4, chunk_size=7).scan(
            urls, countries, samples=3)
        assert _rows(pooled) == _rows(full)
