"""Tests for recall evaluation and ground-truth scoring."""

import random

import pytest

from repro.core.metrics import (
    GroundTruthScore,
    overall_recall,
    recall_by_fingerprint,
    score_confirmed_blocks,
)
from repro.core.resample import ConfirmedBlock
from repro.lumscan.records import ScanDataset
from repro.websim import blockpages


@pytest.fixture
def rng():
    return random.Random(23)


def _dataset(rng):
    data = ScanDataset()
    # blocked.com: representative 10k; block page ~500 (flagged).
    data.append("blocked.com", "US", 200, 10_000, None)
    body = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng,
                             "blocked.com", "IR").body
    data.append("blocked.com", "IR", 403, len(body), body)
    # sneaky.com: block page as long as the real page (missed by the
    # heuristic — the Table 2 recall < 100% phenomenon).
    body2 = blockpages.render(blockpages.CLOUDFLARE_BLOCK, rng,
                              "sneaky.com", "IR").body
    data.append("sneaky.com", "US", 200, len(body2), "x" * len(body2))
    data.append("sneaky.com", "IR", 403, len(body2), body2)
    return data


class TestRecall:
    def test_recall_rows(self, rng):
        data = _dataset(rng)
        from repro.core.lengths import representative_lengths
        reps = representative_lengths(data)
        rows = recall_by_fingerprint(data, reps, cutoff=0.30)
        assert len(rows) == 1
        row = rows[0]
        assert row.display_name == "Cloudflare"
        assert row.actual == 2
        assert row.recalled == 1
        assert row.recall == 0.5

    def test_overall_recall(self, rng):
        data = _dataset(rng)
        from repro.core.lengths import representative_lengths
        rows = recall_by_fingerprint(data, representative_lengths(data))
        assert overall_recall(rows) == 0.5

    def test_overall_recall_empty(self):
        assert overall_recall([]) == 1.0

    def test_country_restriction(self, rng):
        data = _dataset(rng)
        from repro.core.lengths import representative_lengths
        reps = representative_lengths(data)
        rows = recall_by_fingerprint(data, reps, restrict_countries=["US"])
        assert rows == []


class TestGroundTruthScore:
    def test_precision_recall_math(self):
        score = GroundTruthScore(true_positives=8, false_positives=2,
                                 false_negatives=2)
        assert score.precision == 0.8
        assert score.recall == 0.8
        assert score.f1 == pytest.approx(0.8)

    def test_empty_edge_cases(self):
        empty = GroundTruthScore(0, 0, 0)
        assert empty.precision == 1.0
        assert empty.recall == 1.0

    def test_score_confirmed_blocks(self, nano_world):
        # Build confirmed records straight from ground truth: perfect score.
        confirmed = []
        tested_domains = []
        countries = nano_world.registry.luminati_codes()
        for name, policy in nano_world.policies.items():
            if not policy.is_geoblocking or not policy.active(1):
                continue
            if policy.block_page not in blockpages.EXPLICIT_GEOBLOCK_TYPES:
                continue
            tested_domains.append(name)
            for country in policy.blocked_countries:
                if country in countries:
                    confirmed.append(ConfirmedBlock(
                        domain=name, country=country,
                        page_type=policy.block_page,
                        provider=policy.enforcer, agreement=1.0,
                        total_samples=23))
        score = score_confirmed_blocks(nano_world, confirmed, tested_domains,
                                       countries)
        assert score.precision == 1.0
        assert score.recall == 1.0

    def test_score_counts_misses(self, nano_world):
        countries = nano_world.registry.luminati_codes()
        tested = [name for name, p in nano_world.policies.items()
                  if p.is_geoblocking
                  and p.block_page in blockpages.EXPLICIT_GEOBLOCK_TYPES
                  and p.active(1)]
        if not tested:
            pytest.skip("no explicit geoblockers")
        score = score_confirmed_blocks(nano_world, [], tested, countries)
        assert score.recall == 0.0
        assert score.false_negatives > 0
