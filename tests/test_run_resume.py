"""Resume-equality integration tests (the staged-runner contract).

A run interrupted after ``initial-scan`` and resumed must produce
bit-identical results to an uninterrupted run while skipping the
completed stages.  Probe outcomes are pure functions of task identity, so
this holds as long as the checkpoint codecs round-trip every artifact
exactly and no skipped stage leaks shared-RNG state.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.pipeline import (
    StudyConfig,
    run_top10k_study,
    run_top1m_study,
    top10k_stages,
    top1m_stages,
)
from repro.lumscan.serialize import dump_dataset
from repro.proxynet.luminati import LuminatiClient
from repro.run import ArtifactStore
from repro.websim.world import World, WorldConfig

#: Stages assumed complete when the run "crashed" after the initial scan.
_COMPLETED = ("safe-list", "country-ranking", "initial-scan")


@pytest.fixture(scope="module")
def resume_pair(tmp_path_factory):
    """(fresh result, resumed result, fresh probes, resumed probes)."""
    root = str(tmp_path_factory.mktemp("checkpoints"))
    cfg = StudyConfig()

    fresh_world = World(WorldConfig.nano())
    fresh_lum = LuminatiClient(fresh_world)
    fresh = run_top10k_study(fresh_world, fresh_lum, cfg,
                             checkpoint_dir=root)

    # Simulate the interruption: revoke completion of every stage after
    # the initial scan, then resume on a brand-new world instance.
    store = ArtifactStore(root, "top10k", cfg, fresh_world.config)
    store.invalidate([s for s in top10k_stages()
                      if s.name not in _COMPLETED])

    resumed_world = World(WorldConfig.nano())
    resumed_lum = LuminatiClient(resumed_world)
    resumed = run_top10k_study(resumed_world, resumed_lum, cfg,
                               checkpoint_dir=root, resume=True)
    return fresh, resumed, fresh_lum.request_count, resumed_lum.request_count


class TestTop10KResume:
    def test_derived_artifacts_identical(self, resume_pair):
        fresh, resumed, _, _ = resume_pair
        assert resumed.safe_domains == fresh.safe_domains
        assert resumed.countries == fresh.countries
        assert resumed.top_blocking_countries == fresh.top_blocking_countries
        assert resumed.representatives == fresh.representatives
        assert resumed.outliers == fresh.outliers
        assert resumed.clusters == fresh.clusters
        assert list(resumed.registry) == list(fresh.registry)
        assert resumed.candidates == fresh.candidates
        assert resumed.confirmed == fresh.confirmed
        assert resumed.other_page_counts == fresh.other_page_counts
        assert (resumed.other_page_counts.most_common()
                == fresh.other_page_counts.most_common())
        assert (resumed.luminati_refused_domains
                == fresh.luminati_refused_domains)
        assert (resumed.never_responding_domains
                == fresh.never_responding_domains)

    def test_datasets_byte_identical(self, resume_pair, tmp_path):
        fresh, resumed, _, _ = resume_pair
        for name in ("initial", "resampled"):
            a = tmp_path / f"fresh.{name}.jsonl.gz"
            b = tmp_path / f"resumed.{name}.jsonl.gz"
            dump_dataset(getattr(fresh, name), a)
            dump_dataset(getattr(resumed, name), b)
            assert a.read_bytes() == b.read_bytes()

    def test_completed_stages_skipped(self, resume_pair):
        _, resumed, _, _ = resume_pair
        hits = {s.stage: s.cache_hit for s in resumed.stage_stats}
        assert all(hits[name] for name in _COMPLETED)
        assert not any(hit for name, hit in hits.items()
                       if name not in _COMPLETED)

    def test_resume_saves_probes(self, resume_pair):
        """The initial scan dominates probe count; skipping it must show."""
        _, resumed, fresh_probes, resumed_probes = resume_pair
        assert resumed_probes < fresh_probes
        by_stage = {s.stage: s.probes for s in resumed.stage_stats}
        assert by_stage["initial-scan"] == 0
        assert by_stage["candidate-resample"] > 0

    def test_stats_cover_every_stage(self, resume_pair):
        fresh, resumed, _, _ = resume_pair
        names = [s.name for s in top10k_stages()]
        assert [s.stage for s in fresh.stage_stats] == names
        assert [s.stage for s in resumed.stage_stats] == names


class TestTop1MResume:
    def test_resume_after_scan_is_identical(self, tmp_path, registry):
        root = str(tmp_path)
        cfg = StudyConfig()

        fresh_world = World(WorldConfig.nano())
        fresh = run_top1m_study(fresh_world, config=cfg, registry=registry,
                                checkpoint_dir=root)

        store = ArtifactStore(root, "top1m", cfg, fresh_world.config,
                              salt=_registry_salt(registry))
        store.invalidate([s for s in top1m_stages()
                          if s.name in ("explicit-confirm",
                                        "nonexplicit-confirm")])

        resumed_world = World(WorldConfig.nano())
        resumed = run_top1m_study(resumed_world, config=cfg,
                                  registry=registry,
                                  checkpoint_dir=root, resume=True)

        assert resumed.population.customers == fresh.population.customers
        assert resumed.safe_customers == fresh.safe_customers
        assert resumed.sampled_domains == fresh.sampled_domains
        assert resumed.confirmed == fresh.confirmed
        assert resumed.nonexplicit_flagged == fresh.nonexplicit_flagged
        assert resumed.consistency == fresh.consistency
        hits = {s.stage: s.cache_hit for s in resumed.stage_stats}
        assert hits == {"customer-id": True, "sample": True, "scan": True,
                        "explicit-confirm": False,
                        "nonexplicit-confirm": False}


def _registry_salt(registry):
    from repro.core.pipeline import registry_salt
    return registry_salt(registry)


class TestCheckpointInvalidation:
    def test_config_change_invalidates_everything(self, tmp_path):
        """Changing a methodology knob must force full re-execution."""
        root = str(tmp_path)
        world = World(WorldConfig.nano())
        lum = LuminatiClient(world)
        run_top10k_study(world, lum, StudyConfig(), checkpoint_dir=root)

        changed = dataclasses.replace(StudyConfig(), samples_confirm=10)
        world2 = World(WorldConfig.nano())
        result = run_top10k_study(world2, config=changed,
                                  checkpoint_dir=root, resume=True)
        assert not any(s.cache_hit for s in result.stage_stats)
