"""Resume-equality integration tests (the staged-runner contract).

A run interrupted after ``initial-scan`` and resumed must produce
bit-identical results to an uninterrupted run while skipping the
completed stages.  Probe outcomes are pure functions of task identity, so
this holds as long as the checkpoint codecs round-trip every artifact
exactly and no skipped stage leaks shared-RNG state.
"""

from __future__ import annotations

import dataclasses
import os
import shutil

import pytest

from repro.core.pipeline import (
    StudyConfig,
    run_top10k_study,
    run_top1m_study,
    top10k_stages,
    top1m_stages,
)
from repro.lumscan.records import ScanDataset, SegmentedScanDataset
from repro.lumscan.serialize import dump_dataset, load_dataset
from repro.lumscan.shards import append_segment
from repro.proxynet.luminati import LuminatiClient
from repro.run import ArtifactStore
from repro.websim.world import World, WorldConfig

#: Stages assumed complete when the run "crashed" after the initial scan.
_COMPLETED = ("safe-list", "country-ranking", "initial-scan")


@pytest.fixture(scope="module")
def resume_pair(tmp_path_factory):
    """(fresh result, resumed result, fresh probes, resumed probes)."""
    root = str(tmp_path_factory.mktemp("checkpoints"))
    cfg = StudyConfig()

    fresh_world = World(WorldConfig.nano())
    fresh_lum = LuminatiClient(fresh_world)
    fresh = run_top10k_study(fresh_world, fresh_lum, cfg,
                             checkpoint_dir=root)

    # Simulate the interruption: revoke completion of every stage after
    # the initial scan, then resume on a brand-new world instance.
    store = ArtifactStore(root, "top10k", cfg, fresh_world.config)
    store.invalidate([s for s in top10k_stages()
                      if s.name not in _COMPLETED])

    resumed_world = World(WorldConfig.nano())
    resumed_lum = LuminatiClient(resumed_world)
    resumed = run_top10k_study(resumed_world, resumed_lum, cfg,
                               checkpoint_dir=root, resume=True)
    return fresh, resumed, fresh_lum.request_count, resumed_lum.request_count


class TestTop10KResume:
    def test_derived_artifacts_identical(self, resume_pair):
        fresh, resumed, _, _ = resume_pair
        assert resumed.safe_domains == fresh.safe_domains
        assert resumed.countries == fresh.countries
        assert resumed.top_blocking_countries == fresh.top_blocking_countries
        assert resumed.representatives == fresh.representatives
        assert resumed.outliers == fresh.outliers
        assert resumed.clusters == fresh.clusters
        assert list(resumed.registry) == list(fresh.registry)
        assert resumed.candidates == fresh.candidates
        assert resumed.confirmed == fresh.confirmed
        assert resumed.other_page_counts == fresh.other_page_counts
        assert (resumed.other_page_counts.most_common()
                == fresh.other_page_counts.most_common())
        assert (resumed.luminati_refused_domains
                == fresh.luminati_refused_domains)
        assert (resumed.never_responding_domains
                == fresh.never_responding_domains)

    def test_datasets_byte_identical(self, resume_pair, tmp_path):
        fresh, resumed, _, _ = resume_pair
        for name in ("initial", "resampled"):
            a = tmp_path / f"fresh.{name}.jsonl.gz"
            b = tmp_path / f"resumed.{name}.jsonl.gz"
            dump_dataset(getattr(fresh, name), a)
            dump_dataset(getattr(resumed, name), b)
            assert a.read_bytes() == b.read_bytes()

    def test_completed_stages_skipped(self, resume_pair):
        _, resumed, _, _ = resume_pair
        hits = {s.stage: s.cache_hit for s in resumed.stage_stats}
        assert all(hits[name] for name in _COMPLETED)
        assert not any(hit for name, hit in hits.items()
                       if name not in _COMPLETED)

    def test_resume_saves_probes(self, resume_pair):
        """The initial scan dominates probe count; skipping it must show."""
        _, resumed, fresh_probes, resumed_probes = resume_pair
        assert resumed_probes < fresh_probes
        by_stage = {s.stage: s.probes for s in resumed.stage_stats}
        assert by_stage["initial-scan"] == 0
        assert by_stage["candidate-resample"] > 0

    def test_stats_cover_every_stage(self, resume_pair):
        fresh, resumed, _, _ = resume_pair
        names = [s.name for s in top10k_stages()]
        assert [s.stage for s in fresh.stage_stats] == names
        assert [s.stage for s in resumed.stage_stats] == names


def _segment_checkpoint(path: str, k: int) -> None:
    """Rewrite one LSHD dataset checkpoint as a ``k``-segment manifest.

    Loads sniff magic bytes, so the manifest can live at the recorded
    ``.lshd`` file name — the stage manifest.json needs no patching.
    """
    flat = load_dataset(path, mmap=False)
    rows = [flat.row(i) for i in range(len(flat))]
    os.remove(path)
    bounds = [round(i * len(rows) / k) for i in range(k + 1)]
    for lo, hi in zip(bounds, bounds[1:]):
        part = ScanDataset()
        for sample in rows[lo:hi]:
            part.append(sample.domain, sample.country, sample.status,
                        sample.length, sample.body, error=sample.error,
                        interfered=sample.interfered)
        append_segment(path, part.export_columns())


class TestSegmentedResume:
    """Resuming over a K-segment manifest checkpoint is bit-identical.

    The acceptance criterion for manifest-backed logical datasets: every
    kernel downstream of the initial scan must produce byte-identical
    study outputs whether the checkpoint is one flat segment or a
    manifest of K segments, for K in {1, 2, 7}.
    """

    @pytest.fixture(scope="class")
    def fresh_run(self, tmp_path_factory):
        root = str(tmp_path_factory.mktemp("fresh-ckpt"))
        cfg = StudyConfig()
        world = World(WorldConfig.nano())
        fresh = run_top10k_study(world, LuminatiClient(world), cfg,
                                 checkpoint_dir=root)
        return fresh, root, cfg, world.config

    @pytest.mark.parametrize("k", [1, 2, 7])
    def test_resume_over_k_segments_identical(self, fresh_run, tmp_path, k):
        fresh, root, cfg, world_config = fresh_run
        ckpt = str(tmp_path / "ckpt")
        shutil.copytree(root, ckpt)
        dataset_path = os.path.join(ckpt, "top10k",
                                    "initial-scan.initial.lshd")
        _segment_checkpoint(dataset_path, k)
        reloaded = load_dataset(dataset_path)
        assert isinstance(reloaded, SegmentedScanDataset)
        assert len(reloaded.parts) == k
        reloaded.close()

        store = ArtifactStore(ckpt, "top10k", cfg, world_config)
        store.invalidate([s for s in top10k_stages()
                          if s.name not in _COMPLETED])
        world = World(WorldConfig.nano())
        resumed = run_top10k_study(world, LuminatiClient(world), cfg,
                                   checkpoint_dir=ckpt, resume=True)

        assert resumed.representatives == fresh.representatives
        assert resumed.outliers == fresh.outliers
        assert resumed.clusters == fresh.clusters
        assert list(resumed.registry) == list(fresh.registry)
        assert resumed.candidates == fresh.candidates
        assert resumed.confirmed == fresh.confirmed
        assert resumed.other_page_counts == fresh.other_page_counts
        for name in ("initial", "resampled"):
            a = tmp_path / f"fresh.{name}.jsonl.gz"
            b = tmp_path / f"resumed.{name}.jsonl.gz"
            dump_dataset(getattr(fresh, name), a)
            dump_dataset(getattr(resumed, name), b)
            assert a.read_bytes() == b.read_bytes()
        hits = {s.stage: s.cache_hit for s in resumed.stage_stats}
        assert all(hits[name] for name in _COMPLETED)


class TestTop1MResume:
    def test_resume_after_scan_is_identical(self, tmp_path, registry):
        root = str(tmp_path)
        cfg = StudyConfig()

        fresh_world = World(WorldConfig.nano())
        fresh = run_top1m_study(fresh_world, config=cfg, registry=registry,
                                checkpoint_dir=root)

        store = ArtifactStore(root, "top1m", cfg, fresh_world.config,
                              salt=_registry_salt(registry))
        store.invalidate([s for s in top1m_stages()
                          if s.name in ("explicit-confirm",
                                        "nonexplicit-confirm")])

        resumed_world = World(WorldConfig.nano())
        resumed = run_top1m_study(resumed_world, config=cfg,
                                  registry=registry,
                                  checkpoint_dir=root, resume=True)

        assert resumed.population.customers == fresh.population.customers
        assert resumed.safe_customers == fresh.safe_customers
        assert resumed.sampled_domains == fresh.sampled_domains
        assert resumed.confirmed == fresh.confirmed
        assert resumed.nonexplicit_flagged == fresh.nonexplicit_flagged
        assert resumed.consistency == fresh.consistency
        hits = {s.stage: s.cache_hit for s in resumed.stage_stats}
        assert hits == {"customer-id": True, "sample": True, "scan": True,
                        "explicit-confirm": False,
                        "nonexplicit-confirm": False}


def _registry_salt(registry):
    from repro.core.pipeline import registry_salt
    return registry_salt(registry)


class TestCheckpointInvalidation:
    def test_config_change_invalidates_everything(self, tmp_path):
        """Changing a methodology knob must force full re-execution."""
        root = str(tmp_path)
        world = World(WorldConfig.nano())
        lum = LuminatiClient(world)
        run_top10k_study(world, lum, StudyConfig(), checkpoint_dir=root)

        changed = dataclasses.replace(StudyConfig(), samples_confirm=10)
        world2 = World(WorldConfig.nano())
        result = run_top10k_study(world2, config=changed,
                                  checkpoint_dir=root, resume=True)
        assert not any(s.cache_hit for s in result.stage_stats)
