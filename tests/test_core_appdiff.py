"""Tests for application-layer discrimination detection (§7.3 extension)."""

import pytest

from repro.core.appdiff import (
    AppDiffFinding,
    AppDiffResult,
    extract_features,
    run_appdiff_study,
)
from repro.proxynet.luminati import LuminatiClient
from repro.websim.content import degrade_page, generate_page
from repro.websim.world import World, WorldConfig


class TestExtractFeatures:
    def test_full_page(self):
        page = generate_page("shop.com", "Shopping", seed=1)
        features = extract_features(page)
        assert features.has_login
        assert features.has_register
        assert len(features.prices) == 3

    def test_non_commerce_has_no_prices(self):
        page = generate_page("news.com", "News and Media", seed=1)
        features = extract_features(page)
        assert features.has_login
        assert features.prices == ()

    def test_degraded_page_loses_account(self):
        page = generate_page("shop.com", "Shopping", seed=1)
        degraded = degrade_page(page, remove_account=True)
        features = extract_features(degraded)
        assert not features.has_login
        assert not features.has_register
        assert len(features.prices) == 3  # prices untouched

    def test_price_multiplier(self):
        page = generate_page("shop.com", "Shopping", seed=1)
        raised = degrade_page(page, price_multiplier=1.25)
        base = extract_features(page).prices
        new = extract_features(raised).prices
        for b, n in zip(base, new):
            assert n == pytest.approx(b * 1.25, abs=0.011)

    def test_degradation_preserves_length_roughly(self):
        # The reason blockpage pipelines miss this: the page barely shrinks.
        page = generate_page("shop.com", "Shopping", seed=1)
        degraded = degrade_page(page, remove_account=True,
                                price_multiplier=1.3)
        assert abs(len(page) - len(degraded)) / len(page) < 0.05


@pytest.fixture(scope="module")
def degraded_world():
    return World(WorldConfig.tiny(seed=3))


class TestStudy:
    def _targets(self, world, kind):
        out = []
        for name, degradation in world.degradations.items():
            domain = world.population.get(name)
            if (domain.dead or domain.redirect_loop or domain.censored_in
                    or name in world.policies):
                continue
            if kind == "feature" and degradation.remove_account_countries:
                reachable = [c for c in degradation.remove_account_countries
                             if c in world.registry
                             and world.registry.get(c).luminati]
                if reachable:
                    out.append((name, sorted(reachable)))
            if kind == "price" and degradation.price_multipliers:
                reachable = [c for c in degradation.price_multipliers
                             if c in world.registry
                             and world.registry.get(c).luminati]
                if reachable:
                    out.append((name, sorted(reachable)))
        return out

    def test_detects_feature_removal(self, degraded_world):
        targets = self._targets(degraded_world, "feature")
        if not targets:
            pytest.skip("no feature-degrading domain in this world")
        name, blocked = targets[0]
        luminati = LuminatiClient(degraded_world)
        countries = [c for c in degraded_world.registry.luminati_codes()][:14]
        countries = sorted(set(countries) | set(blocked[:2]))
        result = run_appdiff_study(luminati, [name], countries, samples=2)
        flagged = {(f.domain, f.country)
                   for f in result.by_kind("feature-removal")}
        assert any((name, c) in flagged for c in blocked)

    def test_detects_price_discrimination(self, degraded_world):
        targets = self._targets(degraded_world, "price")
        if not targets:
            pytest.skip("no price-discriminating domain in this world")
        name, raised = targets[0]
        luminati = LuminatiClient(degraded_world)
        countries = [c for c in degraded_world.registry.luminati_codes()][:14]
        countries = sorted(set(countries) | set(raised[:2]))
        result = run_appdiff_study(luminati, [name], countries, samples=2)
        price_findings = {f.country: f for f in result.by_kind("price")
                          if f.domain == name}
        hits = [c for c in raised if c in price_findings]
        assert hits
        truth = degraded_world.degradations[name].price_multipliers
        for country in hits:
            assert price_findings[country].price_ratio == pytest.approx(
                truth[country], rel=0.03)

    def test_clean_domains_not_flagged(self, degraded_world):
        clean = [d.name for d in degraded_world.population
                 if d.name not in degraded_world.degradations
                 and d.name not in degraded_world.policies
                 and not d.dead and not d.redirect_loop
                 and not d.censored_in][:6]
        luminati = LuminatiClient(degraded_world)
        countries = degraded_world.registry.luminati_codes()[:10]
        result = run_appdiff_study(luminati, clean, countries, samples=2)
        assert result.findings == []

    def test_too_few_countries_skipped(self, degraded_world):
        luminati = LuminatiClient(degraded_world)
        domain = next(iter(degraded_world.population)).name
        result = run_appdiff_study(luminati, [domain], ["US"], samples=1)
        assert result.findings == []


class TestResultApi:
    def test_by_kind_and_domains(self):
        result = AppDiffResult(findings=[
            AppDiffFinding("a.com", "CN", "feature-removal", "x"),
            AppDiffFinding("a.com", "US", "price", "y", price_ratio=1.2),
            AppDiffFinding("b.com", "DE", "price", "z", price_ratio=1.3),
        ])
        assert len(result.by_kind("price")) == 2
        assert result.domains_with_findings() == ["a.com", "b.com"]
