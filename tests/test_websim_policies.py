"""Tests for the generative policy model."""

import pytest

from repro.websim import blockpages
from repro.websim.countries import CountryRegistry, CRIMEA
from repro.websim.domains import (
    APPENGINE,
    CLOUDFLARE,
    DomainPopulation,
)
from repro.websim.policies import GeoPolicy, PolicyConfig, PolicyModel


@pytest.fixture(scope="module")
def registry():
    return CountryRegistry()


@pytest.fixture(scope="module")
def population():
    return DomainPopulation.generate(size=4000, seed=21)


@pytest.fixture(scope="module")
def policies(registry, population):
    return PolicyModel(registry, seed=21).assign(population)


class TestGeoPolicy:
    def test_blocks_country(self):
        policy = GeoPolicy(enforcer="cloudflare",
                           block_page=blockpages.CLOUDFLARE_BLOCK,
                           blocked_countries=frozenset({"IR"}))
        assert policy.blocks("IR", None, epoch=0)
        assert not policy.blocks("US", None, epoch=0)

    def test_blocks_region(self):
        policy = GeoPolicy(enforcer="appengine",
                           block_page=blockpages.APPENGINE_BLOCK,
                           blocked_regions=frozenset({CRIMEA}))
        assert policy.blocks("UA", CRIMEA, epoch=0)
        assert not policy.blocks("UA", None, epoch=0)

    def test_expiry(self):
        policy = GeoPolicy(enforcer="origin",
                           block_page=blockpages.NGINX_403,
                           blocked_countries=frozenset({"IR"}),
                           expires_epoch=0)
        assert policy.blocks("IR", None, epoch=0)
        assert not policy.blocks("IR", None, epoch=1)

    def test_challenge_all(self):
        policy = GeoPolicy(enforcer="cloudflare",
                           block_page=blockpages.CLOUDFLARE_BLOCK,
                           challenge_all=True)
        assert policy.challenges("US")
        assert not policy.is_geoblocking

    def test_challenge_countries(self):
        policy = GeoPolicy(enforcer="cloudflare",
                           block_page=blockpages.CLOUDFLARE_BLOCK,
                           challenge_countries=frozenset({"CN"}))
        assert policy.challenges("CN")
        assert not policy.challenges("US")


class TestAssignment:
    def test_appengine_blocks_exactly_sanctions(self, registry, population, policies):
        sanctioned = frozenset(registry.sanctioned_codes())
        appengine = [p for name, p in policies.items()
                     if p.enforcer == APPENGINE and p.is_geoblocking]
        assert appengine
        for policy in appengine:
            assert policy.blocked_countries == sanctioned
            assert CRIMEA in policy.blocked_regions

    def test_appengine_adoption_rate(self, population, policies):
        customers = population.by_provider(APPENGINE)
        blocked = [d for d in customers
                   if policies.get(d.name)
                   and policies[d.name].is_geoblocking]
        # All ranks here are <= 10,000, so the head rate (40.7%) applies.
        rate = len(blocked) / len(customers)
        assert 0.25 < rate < 0.55

    def test_cloudflare_enterprise_blocks_most(self, population, policies):
        by_tier = {"enterprise": [0, 0], "free": [0, 0]}
        for domain in population.by_provider(CLOUDFLARE):
            if domain.cf_tier not in by_tier:
                continue
            by_tier[domain.cf_tier][1] += 1
            policy = policies.get(domain.name)
            if policy is not None and policy.is_geoblocking:
                by_tier[domain.cf_tier][0] += 1
        ent_rate = by_tier["enterprise"][0] / max(1, by_tier["enterprise"][1])
        free_rate = by_tier["free"][0] / max(1, by_tier["free"][1])
        assert ent_rate > free_rate

    def test_brand_policy(self, population, policies):
        brand_domains = [d for d in population if d.brand]
        for domain in brand_domains:
            policy = policies[domain.name]
            assert policy.enforcer == "brand"
            assert policy.block_page == blockpages.AIRBNB_BLOCK
            assert policy.blocked_countries == frozenset({"IR", "SY", "KP"})
            assert CRIMEA in policy.blocked_regions

    def test_exactly_one_transient_policy(self, policies):
        transient = [p for p in policies.values() if p.expires_epoch == 0]
        assert len(transient) == 1
        assert transient[0].enforcer == "origin"

    def test_modes_present(self, policies):
        modes = {p.mode for p in policies.values() if p.is_geoblocking}
        assert {"sanctions", "risk", "broad"} <= modes

    def test_deterministic(self, registry, population):
        a = PolicyModel(registry, seed=21).assign(population)
        b = PolicyModel(registry, seed=21).assign(population)
        assert a == b

    def test_block_pages_match_enforcer(self, policies):
        from repro.websim.policies import PROVIDER_BLOCK_PAGE
        for policy in policies.values():
            if policy.enforcer in PROVIDER_BLOCK_PAGE:
                assert policy.block_page == PROVIDER_BLOCK_PAGE[policy.enforcer]


class TestCensorship:
    def test_censorship_assignment(self, registry, population):
        model = PolicyModel(registry, seed=21)
        censored = model.assign_censorship(population)
        assert censored
        for countries in censored.values():
            assert countries
            for code in countries:
                assert code in registry

    def test_china_censors_most(self, registry, population):
        model = PolicyModel(registry, seed=21)
        censored = model.assign_censorship(population)
        from collections import Counter
        counts = Counter(c for countries in censored.values() for c in countries)
        assert counts["CN"] >= counts.get("EG", 0)
