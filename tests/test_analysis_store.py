"""Tests for experiment-report persistence."""

import json

import pytest

from repro.analysis.experiments import ExperimentReport
from repro.analysis.figures import FigureData
from repro.analysis.store import load_report, save_report
from repro.analysis.tables import TableData


def _report():
    report = ExperimentReport()
    table = TableData(title="T", columns=["A", "B"])
    table.rows.append(["x", 1])
    report.tables["table1"] = table
    figure = FigureData(title="F", x_label="x", y_label="y")
    figure.add_series("s", [(0.0, 0.0), (1.0, 0.5)])
    report.figures["figure1"] = figure
    report.findings["metric"] = 0.42
    report.findings["countries"] = ["IR", "SY"]
    return report


class TestRoundtrip:
    def test_findings_preserved(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(_report(), path)
        loaded = load_report(path)
        assert loaded.findings["metric"] == 0.42
        assert loaded.findings["countries"] == ["IR", "SY"]

    def test_tables_preserved(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(_report(), path)
        loaded = load_report(path)
        table = loaded.tables["table1"]
        assert table.title == "T"
        assert table.columns == ["A", "B"]
        assert table.rows == [["x", 1]]

    def test_figures_preserved(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(_report(), path)
        loaded = load_report(path)
        figure = loaded.figures["figure1"]
        assert figure.series["s"] == [(0.0, 0.0), (1.0, 0.5)]

    def test_rendering_survives_roundtrip(self, tmp_path):
        path = tmp_path / "report.json"
        original = _report()
        save_report(original, path)
        loaded = load_report(path)
        assert loaded.to_markdown() == original.to_markdown()

    def test_validation_works_on_loaded(self, tmp_path):
        from repro.analysis.validation import validate_findings
        path = tmp_path / "report.json"
        report = ExperimentReport()
        report.findings["top10k.gt_precision"] = 1.0
        save_report(report, path)
        results = validate_findings(load_report(path).findings)
        assert results and results[0].passed


class TestErrors:
    def test_bad_version(self, tmp_path):
        path = tmp_path / "report.json"
        path.write_text(json.dumps({"version": 99}))
        with pytest.raises(ValueError, match="version"):
            load_report(path)

    def test_empty_report(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(ExperimentReport(), path)
        loaded = load_report(path)
        assert not loaded.tables
        assert not loaded.figures


class TestStageStats:
    def test_stage_stats_roundtrip(self, tmp_path):
        report = _report()
        report.stage_stats["top10k"] = [
            {"stage": "initial-scan", "seconds": 1.5, "probes": 900,
             "cache_hit": False, "artifacts": 3, "records": 900},
        ]
        path = tmp_path / "report.json"
        save_report(report, path)
        assert load_report(path).stage_stats == report.stage_stats

    def test_reports_without_stage_stats_load(self, tmp_path):
        """Files written before stage_stats existed must still load."""
        path = tmp_path / "report.json"
        save_report(_report(), path)
        payload = json.loads(path.read_text())
        del payload["stage_stats"]
        path.write_text(json.dumps(payload))
        assert load_report(path).stage_stats == {}

    def test_stage_stats_absent_from_rendered_output(self, tmp_path):
        report = _report()
        report.stage_stats["top10k"] = [
            {"stage": "initial-scan", "seconds": 1.5, "probes": 900,
             "cache_hit": False, "artifacts": 3, "records": 900},
        ]
        assert "initial-scan" not in report.to_markdown()
        assert "initial-scan" not in report.to_text()


class TestAtomicSave:
    def test_no_temp_files_left_behind(self, tmp_path):
        save_report(_report(), tmp_path / "report.json")
        assert [p.name for p in tmp_path.iterdir()
                if ".tmp." in p.name] == []

    def test_failed_save_preserves_existing_file(self, tmp_path):
        path = tmp_path / "report.json"
        save_report(_report(), path)
        before = path.read_bytes()
        bad = _report()
        bad.findings["unserializable"] = object()
        with pytest.raises(TypeError):
            save_report(bad, path)
        assert path.read_bytes() == before
        assert [p.name for p in tmp_path.iterdir()
                if ".tmp." in p.name] == []
