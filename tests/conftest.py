"""Shared fixtures.

World construction and full study runs are expensive, so they are
session-scoped; tests must treat them as read-only.
"""

from __future__ import annotations

import pytest

from repro.core.fingerprints import FingerprintRegistry
from repro.core.pipeline import StudyConfig, run_top10k_study
from repro.proxynet.luminati import LuminatiClient
from repro.websim.world import World, WorldConfig


@pytest.fixture(scope="session")
def nano_world() -> World:
    """350 domains, 12 countries — fast unit-test world."""
    return World(WorldConfig.nano())


@pytest.fixture(scope="session")
def tiny_world() -> World:
    """1,200 domains, 28 countries — integration-test world."""
    return World(WorldConfig.tiny())


@pytest.fixture(scope="session")
def nano_luminati(nano_world) -> LuminatiClient:
    """Luminati client bound to the nano world."""
    return LuminatiClient(nano_world)


@pytest.fixture(scope="session")
def registry() -> FingerprintRegistry:
    """The curated default fingerprint registry."""
    return FingerprintRegistry.default()


@pytest.fixture(scope="session")
def nano_top10k(nano_world):
    """A full Top-10K study over the nano world (read-only)."""
    return run_top10k_study(nano_world)


@pytest.fixture(scope="session")
def tiny_top10k(tiny_world):
    """A full Top-10K study over the tiny world (read-only)."""
    return run_top10k_study(tiny_world)
