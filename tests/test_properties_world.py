"""Property-based tests over the simulation substrate."""

import string

from hypothesis import given, settings, strategies as st

from repro.netsim.ip import AddressAllocator, Netblock
from repro.websim import blockpages
from repro.websim.policies import GeoPolicy

_codes = st.sampled_from(["US", "IR", "SY", "CN", "RU", "DE", "BR", "NG"])


class TestNetblockProperties:
    @given(index=st.integers(min_value=0, max_value=2 ** 20))
    def test_address_at_always_contained(self, index):
        block = Netblock(cidr="10.9.0.0/16", owner="x")
        assert block.address_at(index) in block

    @given(octets=st.tuples(st.integers(0, 255), st.integers(0, 255),
                            st.integers(0, 255), st.integers(0, 255)))
    def test_containment_matches_prefix(self, octets):
        block = Netblock(cidr="10.9.0.0/16", owner="x")
        address = ".".join(str(o) for o in octets)
        expected = octets[0] == 10 and octets[1] == 9
        assert (address in block) == expected

    @given(owners=st.lists(st.text(alphabet=string.ascii_lowercase,
                                   min_size=1, max_size=6),
                           min_size=1, max_size=8, unique=True))
    def test_allocations_disjoint(self, owners):
        allocator = AddressAllocator()
        for owner in owners:
            allocator.allocate(owner, 2)
        seen = set()
        for owner in owners:
            for block in allocator.blocks_of(owner):
                assert block.cidr not in seen
                seen.add(block.cidr)


class TestGeoPolicyProperties:
    @given(blocked=st.frozensets(_codes, max_size=5),
           query=_codes, epoch=st.integers(0, 3))
    def test_blocks_iff_member(self, blocked, query, epoch):
        policy = GeoPolicy(enforcer="cloudflare",
                           block_page=blockpages.CLOUDFLARE_BLOCK,
                           blocked_countries=blocked)
        assert policy.blocks(query, None, epoch) == (query in blocked)

    @given(blocked=st.frozensets(_codes, min_size=1, max_size=5),
           expiry=st.integers(0, 2), epoch=st.integers(0, 4))
    def test_expiry_semantics(self, blocked, expiry, epoch):
        policy = GeoPolicy(enforcer="origin",
                           block_page=blockpages.NGINX_403,
                           blocked_countries=blocked,
                           expires_epoch=expiry)
        country = sorted(blocked)[0]
        assert policy.blocks(country, None, epoch) == (epoch <= expiry)

    @given(challenged=st.frozensets(_codes, max_size=4), query=_codes)
    def test_challenge_disjoint_from_block(self, challenged, query):
        policy = GeoPolicy(enforcer="cloudflare",
                           block_page=blockpages.CLOUDFLARE_BLOCK,
                           challenge_countries=challenged)
        # A pure challenge policy never geoblocks.
        assert not policy.is_geoblocking
        assert policy.challenges(query) == (query in challenged)

    @given(blocked=st.frozensets(_codes, max_size=4),
           regions=st.frozensets(st.sampled_from(["crimea"]), max_size=1))
    def test_is_geoblocking_definition(self, blocked, regions):
        policy = GeoPolicy(enforcer="appengine",
                           block_page=blockpages.APPENGINE_BLOCK,
                           blocked_countries=blocked,
                           blocked_regions=regions)
        assert policy.is_geoblocking == bool(blocked or regions)


class TestFingerprintProperties:
    @given(noise=st.text(alphabet=string.ascii_letters + string.digits + " ",
                         max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_markers_immune_to_prefix_suffix_noise(self, noise):
        from repro.core.fingerprints import FingerprintRegistry
        import random
        registry = FingerprintRegistry.default()
        page = blockpages.render(blockpages.CLOUDFRONT_BLOCK,
                                 random.Random(1), "h.com", "IR")
        assert registry.match(noise + page.body + noise) == \
            blockpages.CLOUDFRONT_BLOCK

    @given(seed=st.integers(0, 10_000))
    @settings(max_examples=30, deadline=None)
    def test_all_templates_classified_for_any_seed(self, seed):
        from repro.core.fingerprints import FingerprintRegistry
        import random
        registry = FingerprintRegistry.default()
        rng = random.Random(seed)
        for page_type in blockpages.ALL_PAGE_TYPES:
            page = blockpages.render(page_type, rng, "host.org", "SY")
            assert registry.match(page.body) == page_type
