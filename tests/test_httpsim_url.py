"""Tests for URL parsing and resolution."""

import pytest

from repro.httpsim.url import URL, URLError, parse_url


class TestParseUrl:
    def test_basic_http(self):
        url = parse_url("http://example.com/")
        assert url.scheme == "http"
        assert url.host == "example.com"
        assert url.port == 80
        assert url.path == "/"

    def test_https_default_port(self):
        assert parse_url("https://example.com/").port == 443

    def test_explicit_port(self):
        assert parse_url("http://example.com:8080/x").port == 8080

    def test_path_and_query(self):
        url = parse_url("http://e.com/a/b?x=1&y=2")
        assert url.path == "/a/b"
        assert url.query == "x=1&y=2"

    def test_no_trailing_slash(self):
        assert parse_url("http://e.com").path == "/"

    def test_host_lowercased(self):
        assert parse_url("http://EXAMPLE.Com/").host == "example.com"

    def test_scheme_case_insensitive(self):
        assert parse_url("HTTP://e.com/").scheme == "http"

    def test_rejects_relative(self):
        with pytest.raises(URLError):
            parse_url("/just/a/path")

    def test_rejects_unknown_scheme(self):
        with pytest.raises(URLError):
            parse_url("ftp://example.com/")

    def test_rejects_empty_host(self):
        with pytest.raises(URLError):
            parse_url("http:///path")

    def test_rejects_bad_port(self):
        with pytest.raises(URLError):
            parse_url("http://e.com:notaport/")

    def test_rejects_port_out_of_range(self):
        with pytest.raises(URLError):
            parse_url("http://e.com:70000/")


class TestUrlStr:
    def test_default_port_omitted(self):
        assert str(parse_url("http://e.com/")) == "http://e.com/"

    def test_explicit_port_kept(self):
        assert str(parse_url("http://e.com:81/")) == "http://e.com:81/"

    def test_query_preserved(self):
        assert str(parse_url("http://e.com/p?q=1")) == "http://e.com/p?q=1"

    def test_roundtrip(self):
        original = "https://sub.example.co.uk:444/a/b?c=d"
        assert str(parse_url(original)) == original


class TestRegistrableDomain:
    def test_two_labels(self):
        assert parse_url("http://example.com/").registrable_domain == "example.com"

    def test_www_subdomain(self):
        assert parse_url("http://www.example.com/").registrable_domain == "example.com"

    def test_deep_subdomain(self):
        assert parse_url("http://a.b.example.org/").registrable_domain == "example.org"

    def test_two_label_public_suffix(self):
        assert parse_url("http://makro.co.za/").registrable_domain == "makro.co.za"

    def test_subdomain_of_two_label_suffix(self):
        assert (parse_url("http://www.makro.co.za/").registrable_domain
                == "makro.co.za")

    def test_single_label(self):
        assert parse_url("http://localhost/").registrable_domain == "localhost"


class TestResolve:
    def test_absolute(self):
        base = parse_url("http://a.com/x")
        assert str(base.resolve("https://b.com/y")) == "https://b.com/y"

    def test_scheme_relative(self):
        base = parse_url("https://a.com/x")
        resolved = base.resolve("//b.com/y")
        assert resolved.scheme == "https"
        assert resolved.host == "b.com"

    def test_absolute_path(self):
        base = parse_url("http://a.com/x/y?q=1")
        resolved = base.resolve("/z")
        assert resolved.host == "a.com"
        assert resolved.path == "/z"
        assert resolved.query == ""

    def test_relative_path(self):
        base = parse_url("http://a.com/dir/page")
        assert base.resolve("other").path == "/dir/other"

    def test_query_in_location(self):
        resolved = parse_url("http://a.com/").resolve("/p?x=2")
        assert resolved.query == "x=2"
