"""Tests for the column-oriented scan dataset."""

from repro.lumscan.records import BODY_KEEP_THRESHOLD, NO_RESPONSE, ScanDataset


def _dataset():
    data = ScanDataset()
    data.append("a.com", "US", 200, 50_000, "x" * 50_000)
    data.append("a.com", "US", 200, 50_100, "x" * 50_100)
    data.append("a.com", "IR", 403, 500, "<html>blocked</html>")
    data.append("a.com", "IR", NO_RESPONSE, 0, None, error="timeout")
    data.append("b.com", "US", 200, 4_000, "y" * 4_000)
    return data


class TestAppendAndRow:
    def test_len(self):
        assert len(_dataset()) == 5

    def test_row_fields(self):
        sample = _dataset().row(2)
        assert sample.domain == "a.com"
        assert sample.country == "IR"
        assert sample.status == 403
        assert sample.length == 500
        assert sample.body == "<html>blocked</html>"

    def test_large_200_body_dropped(self):
        sample = _dataset().row(0)
        assert sample.body is None
        assert sample.length == 50_000

    def test_small_200_body_kept(self):
        assert _dataset().row(4).body == "y" * 4_000

    def test_non200_body_kept_regardless_of_size(self):
        data = ScanDataset()
        big = "z" * (BODY_KEEP_THRESHOLD + 10_000)
        data.append("c.com", "US", 403, len(big), big)
        assert data.row(0).body == big

    def test_error_sample(self):
        sample = _dataset().row(3)
        assert not sample.ok
        assert sample.error == "timeout"
        assert sample.status == NO_RESPONSE

    def test_interfered_flag(self):
        data = ScanDataset()
        data.append("a.com", "US", 403, 10, "x", interfered=True)
        data.append("a.com", "US", 200, 10, "x")
        assert data.row(0).interfered
        assert not data.row(1).interfered


class TestIterationAndPairs:
    def test_iter_yields_all(self):
        assert len(list(_dataset())) == 5

    def test_pairs_contiguous(self):
        pairs = list(_dataset().pairs())
        keys = [(d, c) for d, c, _ in pairs]
        assert keys == [("a.com", "US"), ("a.com", "IR"), ("b.com", "US")]
        assert [len(samples) for _, _, samples in pairs] == [2, 2, 1]

    def test_domains_and_countries(self):
        data = _dataset()
        assert data.domains() == ["a.com", "b.com"]
        assert data.countries() == ["US", "IR"]


class TestAggregates:
    def test_lengths_by_domain_only_200s(self):
        lengths = _dataset().lengths_by_domain()
        assert lengths["a.com"] == [50_000, 50_100]
        assert lengths["b.com"] == [4_000]

    def test_error_rate_by_domain(self):
        rates = _dataset().error_rate_by_domain()
        assert rates["a.com"] == 0.25
        assert rates["b.com"] == 0.0

    def test_response_rate_by_country(self):
        rates = _dataset().response_rate_by_country()
        assert rates["US"] == 1.0
        assert rates["IR"] == 1.0  # one of two probes responded

    def test_count_status(self):
        data = _dataset()
        assert data.count_status(200) == 3
        assert data.count_status(403) == 1
        assert data.count_status(451) == 0
        assert data.count_status(NO_RESPONSE) == 1

    def test_extend(self):
        a = _dataset()
        b = ScanDataset()
        b.append("c.com", "SY", 403, 20, "<html>x</html>", interfered=True)
        a.extend(b)
        assert len(a) == 6
        sample = a.row(5)
        assert sample.domain == "c.com"
        assert sample.body == "<html>x</html>"
        assert sample.interfered

    def test_extend_reconciles_code_tables(self):
        """Merging datasets whose labels were interned in different
        orders must remap codes, not copy them."""
        a = ScanDataset()
        a.append("a.com", "US", 200, 10, None)
        a.append("b.com", "IR", 200, 20, None)
        b = ScanDataset()
        b.append("b.com", "IR", 403, 30, None)     # codes 0/0 in b...
        b.append("c.com", "US", 200, 40, None)     # ...1/1 in b
        a.extend(b)
        assert [(s.domain, s.country, s.length) for s in a] == [
            ("a.com", "US", 10), ("b.com", "IR", 20),
            ("b.com", "IR", 30), ("c.com", "US", 40)]
        assert a.domains() == ["a.com", "b.com", "c.com"]
        assert a.countries() == ["US", "IR"]

    def test_pairs_with_non_interned_strings(self):
        """Equal-but-distinct string objects belong to the same run
        (regression: ``is``-based run detection split them)."""
        data = ScanDataset()
        for i in range(4):
            data.append("x.example"[:9] + ".com", "".join(["U", "S"]),
                        200, 100 + i, None)
        runs = [(d, c, len(s)) for d, c, s in data.pairs()]
        assert runs == [("x.example.com", "US", 4)]
